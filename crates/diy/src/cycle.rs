//! Litmus-test synthesis from cycles of candidate relaxations — the core
//! `diy` algorithm (Alglave et al., *Fences in Weak Memory Models*).
//!
//! A cycle alternates program-order edges (possibly fenced or
//! dependency-carrying) with communication edges (`Rfe`, `Fre`, `Coe`).
//! Walking the cycle yields one event per edge endpoint; threads switch on
//! communication edges, locations change on different-location po edges.
//! The generated `exists` clause is the unique final state that *witnesses*
//! the cycle — observable only if some edge of the cycle is relaxed.

use std::fmt;
use telechat_common::{Annot, AnnotSet, Error, Reg, Result, StateKey, ThreadId, Val};
use telechat_litmus::{AddrExpr, Condition, Expr, Instr, LitmusTest, LocDecl, Prop, RmwOp};

/// Direction of an event: read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// A read.
    R,
    /// A write.
    W,
}

/// The access flavour used for an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// An atomic access with the given C11 ordering.
    Atomic(Annot),
    /// A plain (non-atomic) access.
    Plain,
    /// A read-modify-write standing in for the event: `exchange` for a
    /// write slot, `fetch_add` for a read slot. The result is *kept* in a
    /// register (the discarded-result variants come from
    /// [`crate::families`]).
    Rmw(Annot),
}

impl fmt::Display for AccessKind {
    /// Compact slug used in generated test names (`RLX`, `ACQ`, `NA`,
    /// `rmw.RLX`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Atomic(o) => write!(f, "{o}"),
            AccessKind::Plain => write!(f, "NA"),
            AccessKind::Rmw(o) => write!(f, "rmw.{o}"),
        }
    }
}

impl AccessKind {
    fn annot(&self) -> AnnotSet {
        match self {
            AccessKind::Atomic(o) | AccessKind::Rmw(o) => {
                AnnotSet::of(&[Annot::Atomic, *o])
            }
            AccessKind::Plain => AnnotSet::one(Annot::NonAtomic),
        }
    }
}

/// One edge of a cycle.
///
/// The derived `Ord` gives edges a stable total order used by the
/// `telechat-fuzz` canonicalizer to pick a unique representative among the
/// rotations of a cycle; changing variant order would silently re-canonise
/// every pinned fuzz corpus, so new variants belong at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// Program order to the next event, same thread. `sameloc` keeps the
    /// location (e.g. coherence shapes); otherwise the location advances.
    Po {
        /// Same location?
        sameloc: bool,
    },
    /// Program order with a fence of the given C11 ordering between.
    Fenced {
        /// Fence ordering (`Relaxed` fences exist and order nothing —
        /// the Fig. 7 shape).
        order: Annot,
    },
    /// An artificial data/address dependency (`xor r,r` idiom) from a read
    /// to the next access, same thread, different location.
    Dp,
    /// A control dependency: the read guards a branch over the next access.
    Ctrl,
    /// Reads-from external: this write is read by a new thread.
    Rfe,
    /// From-read external: this read is overwritten by a new thread.
    Fre,
    /// Coherence external: this write is co-before a write on a new thread.
    Coe,
}

impl Edge {
    /// Does the edge switch threads (communication edge)?
    pub fn is_comm(self) -> bool {
        matches!(self, Edge::Rfe | Edge::Fre | Edge::Coe)
    }

    /// Does the edge advance to the next location in the synthesiser's
    /// walk? (Every intra-thread edge except same-location po; the single
    /// definition shared by the synthesiser, the semantic validity rules
    /// and the fuzzer's location accounting.)
    pub fn advances_loc(self) -> bool {
        !self.is_comm() && !matches!(self, Edge::Po { sameloc: true })
    }

    /// The direction of the event at the *source* of this edge.
    pub fn src_dir(self) -> Option<Dir> {
        match self {
            Edge::Rfe | Edge::Coe => Some(Dir::W),
            Edge::Fre => Some(Dir::R),
            Edge::Dp | Edge::Ctrl => Some(Dir::R),
            Edge::Po { .. } | Edge::Fenced { .. } => None, // any
        }
    }

    /// The direction of the event at the *target* of this edge.
    pub fn dst_dir(self) -> Option<Dir> {
        match self {
            Edge::Rfe => Some(Dir::R),
            Edge::Fre | Edge::Coe => Some(Dir::W),
            _ => None, // any
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Po { sameloc: true } => write!(f, "pos"),
            Edge::Po { sameloc: false } => write!(f, "pod"),
            Edge::Fenced { order } => write!(f, "fen[{order}]"),
            Edge::Dp => write!(f, "dp"),
            Edge::Ctrl => write!(f, "ctrl"),
            Edge::Rfe => write!(f, "rfe"),
            Edge::Fre => write!(f, "fre"),
            Edge::Coe => write!(f, "coe"),
        }
    }
}

/// One event slot discovered by the cycle walk.
#[derive(Debug, Clone)]
struct Slot {
    thread: usize,
    loc: usize,
    dir: Dir,
    /// Incoming po-ish edge (fence/dep) from the previous slot, if same
    /// thread.
    in_edge: Option<Edge>,
}

/// Infers per-event directions from edge constraints and explicit pins:
/// each event is the target of edge `i-1` and the source of edge `i`, and
/// `pins` (shorter slices are padded with `None`) may force a direction.
/// `None` entries in the result are genuinely unconstrained (the
/// synthesiser defaults them to writes).
///
/// This is the single definition shared by [`CycleSpec::synthesise`] and
/// the `telechat-fuzz` generators — validity must not drift between them.
///
/// # Errors
///
/// Returns [`Error::IllFormed`] on a direction clash.
pub fn infer_dirs(edges: &[Edge], pins: &[Option<Dir>]) -> Result<Vec<Option<Dir>>> {
    let n = edges.len();
    let mut out: Vec<Option<Dir>> = (0..n).map(|i| pins.get(i).copied().flatten()).collect();
    #[allow(clippy::needless_range_loop)] // i also indexes the previous edge modulo n
    for i in 0..n {
        let src = edges[i].src_dir();
        let dst_prev = edges[(i + n - 1) % n].dst_dir();
        for c in [src, dst_prev].into_iter().flatten() {
            match out[i] {
                Some(d) if d != c => {
                    return Err(Error::IllFormed(format!(
                        "event {i}: direction clash {d:?} vs {c:?}"
                    )))
                }
                _ => out[i] = Some(c),
            }
        }
    }
    Ok(out)
}

/// The rotation-invariant semantic validity rules beyond direction
/// consistency, shared by [`CycleSpec::synthesise`] and the
/// `telechat-fuzz` generators:
///
/// * a data/address dependency must not target a read — the C11 IR
///   threads dependencies through store operands, and silently emitting
///   plain po instead (the old behaviour) made `dp` shapes isomorphic
///   duplicates of their po twins;
/// * a single location-advancing *plain po* edge wraps straight back to
///   its own location, making the shape its same-location twin in
///   disguise (a lone fence/dependency/control edge has no same-location
///   spelling and is kept).
///
/// # Errors
///
/// [`Error::Unsupported`] for dependency-into-read, [`Error::IllFormed`]
/// for the lone-advancing-po degeneracy.
pub fn check_semantics(edges: &[Edge], dirs: &[Option<Dir>]) -> Result<()> {
    let n = edges.len();
    for i in 0..n {
        if edges[i] == Edge::Dp && dirs[(i + 1) % n] == Some(Dir::R) {
            return Err(Error::Unsupported(format!(
                "event {i}: dependency edge into a read is not representable"
            )));
        }
    }
    let advancing = edges.iter().filter(|e| e.advances_loc()).count();
    if advancing == 1 && edges.contains(&Edge::Po { sameloc: false }) {
        return Err(Error::IllFormed(
            "a single location-advancing po edge wraps to its own location; \
             use a same-location edge instead"
                .into(),
        ));
    }
    Ok(())
}

/// A cycle plus per-event access kinds, ready to synthesise.
#[derive(Debug, Clone)]
pub struct CycleSpec {
    /// Test name.
    pub name: String,
    /// The edges, in order; `edges[i]` connects event `i` to `i+1 (mod n)`.
    pub edges: Vec<Edge>,
    /// Access kind per event (same length as `edges`); defaults to relaxed
    /// atomics when shorter.
    pub kinds: Vec<AccessKind>,
    /// Forced event directions (same length as `edges` when non-empty).
    /// `None` leaves the direction to the edge constraints; `Some` pins it,
    /// which errors on a clash and otherwise lets generators cover both
    /// directions of events no communication edge constrains (interior
    /// events of longer program-order runs, which would default to writes).
    pub dirs: Vec<Option<Dir>>,
}

impl CycleSpec {
    /// A cycle with all-relaxed atomic accesses.
    pub fn new(name: impl Into<String>, edges: Vec<Edge>) -> CycleSpec {
        CycleSpec {
            name: name.into(),
            edges,
            kinds: Vec::new(),
            dirs: Vec::new(),
        }
    }

    /// Overrides the access kind of event `i`.
    #[must_use]
    pub fn kind(mut self, i: usize, k: AccessKind) -> CycleSpec {
        while self.kinds.len() < self.edges.len() {
            self.kinds.push(AccessKind::Atomic(Annot::Relaxed));
        }
        self.kinds[i] = k;
        self
    }

    /// Forces the direction of event `i`.
    #[must_use]
    pub fn dir(mut self, i: usize, d: Dir) -> CycleSpec {
        while self.dirs.len() < self.edges.len() {
            self.dirs.push(None);
        }
        self.dirs[i] = Some(d);
        self
    }

    /// Synthesises the litmus test witnessing this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IllFormed`] if the cycle is inconsistent (direction
    /// clashes, failure to return to the first event's thread and location)
    /// and [`Error::Vacuous`] if it is consistent but cannot witness
    /// anything: fewer than two communication edges (the cycle never
    /// crosses threads, so the generated `exists` clause would hold of a
    /// sequential program), or a self-contradictory witness condition (two
    /// communication edges demanding different values for one state key,
    /// e.g. a two-edge `coe` cycle asking one location to finish with both
    /// writes' values).
    pub fn synthesise(&self) -> Result<LitmusTest> {
        let n = self.edges.len();
        if n < 2 {
            return Err(Error::IllFormed("cycle needs at least two edges".into()));
        }
        match self.edges.iter().filter(|e| e.is_comm()).count() {
            0 => {
                return Err(Error::Vacuous(
                    "cycle has no communication edge, so its witness is vacuous".into(),
                ))
            }
            1 => {
                return Err(Error::Vacuous(
                    "cycle has a single communication edge, which cannot cross threads; \
                     at least two communication edges are needed"
                        .into(),
                ))
            }
            _ => {}
        }
        // Event directions (shared inference, then semantic rules — see
        // [`infer_dirs`] and [`check_semantics`]).
        let inferred = infer_dirs(&self.edges, &self.dirs)?;
        check_semantics(&self.edges, &inferred)?;
        // Unconstrained events default to writes (harmless filler).
        let dirs: Vec<Dir> = inferred.into_iter().map(|d| d.unwrap_or(Dir::W)).collect();

        // Walk: assign threads and locations. Locations advance on every
        // different-location program-order edge, modulo the total number of
        // such edges — diy's wrap-around, which is what closes the cycle.
        let advancing = |e: &Edge| e.advances_loc();
        let nlocs = self.edges.iter().filter(|e| advancing(e)).count().max(1);
        let mut slots: Vec<Slot> = Vec::with_capacity(n);
        let mut thread = 0usize;
        let mut loc = 0usize;
        let max_loc = nlocs - 1;
        slots.push(Slot {
            thread,
            loc,
            dir: dirs[0],
            in_edge: None,
        });
        for i in 0..n - 1 {
            let e = self.edges[i];
            if e.is_comm() {
                thread += 1;
                // communication stays on the same location
            } else if advancing(&e) {
                loc = (loc + 1) % nlocs;
            }
            slots.push(Slot {
                thread,
                loc,
                dir: dirs[i + 1],
                in_edge: (!e.is_comm()).then_some(e),
            });
        }
        // The final edge must close the cycle back to event 0.
        let last = self.edges[n - 1];
        if !last.is_comm() {
            return Err(Error::IllFormed(
                "the final edge must be a communication edge".into(),
            ));
        }
        if slots[n - 1].loc != slots[0].loc {
            return Err(Error::IllFormed(format!(
                "cycle does not close: last location {} vs first {}",
                slots[n - 1].loc, slots[0].loc
            )));
        }

        self.build_test(&slots, max_loc)
    }

    #[allow(clippy::too_many_lines)]
    fn build_test(&self, slots: &[Slot], max_loc: usize) -> Result<LitmusTest> {
        let n = slots.len();
        let loc_name = |i: usize| format!("{}", (b'x' + (i as u8 % 3)) as char)
            .repeat(i / 3 + 1);
        let kinds: Vec<AccessKind> = (0..n)
            .map(|i| {
                self.kinds
                    .get(i)
                    .copied()
                    .unwrap_or(AccessKind::Atomic(Annot::Relaxed))
            })
            .collect();

        // Write values: per location, number the writes 1, 2, … in slot
        // order (the co order the condition pins down).
        let mut next_value = vec![0i64; max_loc + 1];
        let mut value: Vec<Option<i64>> = vec![None; n];
        for (i, s) in slots.iter().enumerate() {
            if s.dir == Dir::W {
                next_value[s.loc] += 1;
                value[i] = Some(next_value[s.loc]);
            }
        }

        // Registers: one per read, per thread.
        let nthreads = slots.last().expect("nonempty").thread + 1;
        let mut reg_counter = vec![0usize; nthreads];
        let mut regs: Vec<Option<Reg>> = vec![None; n];
        for (i, s) in slots.iter().enumerate() {
            if s.dir == Dir::R || matches!(kinds[i], AccessKind::Rmw(_)) {
                let r = Reg::new(format!("r{}", reg_counter[s.thread]));
                reg_counter[s.thread] += 1;
                regs[i] = Some(r);
            }
        }

        // Emit thread bodies.
        let mut threads: Vec<Vec<Instr>> = vec![Vec::new(); nthreads];
        let mut label_counter = 0usize;
        for (i, s) in slots.iter().enumerate() {
            let body = &mut threads[s.thread];
            // Incoming intra-thread edge: fences and dependencies.
            match s.in_edge {
                Some(Edge::Fenced { order })
                    if order != Annot::NonAtomic => {
                        body.push(Instr::Fence {
                            annot: AnnotSet::of(&[Annot::Atomic, order]),
                        });
                    }
                Some(Edge::Dp) => {
                    // xor the previous read into a fresh dep register used
                    // below via `dep + value`.
                }
                Some(Edge::Ctrl) => {}
                _ => {}
            }
            let loc = loc_name(s.loc);
            let annot = kinds[i].annot();
            // The value expression for writes, threading dependencies.
            let dep_expr = |base: i64| -> Expr {
                if matches!(s.in_edge, Some(Edge::Dp)) {
                    // previous slot in the same thread is a read with a reg
                    let prev = regs[i - 1].clone().expect("dp source is a read");
                    Expr::bin(
                        telechat_litmus::BinOp::Add,
                        Expr::int(base),
                        Expr::bin(
                            telechat_litmus::BinOp::Xor,
                            Expr::Reg(prev.clone()),
                            Expr::Reg(prev),
                        ),
                    )
                } else {
                    Expr::int(base)
                }
            };
            let push_access = |body: &mut Vec<Instr>| match (s.dir, &kinds[i]) {
                (Dir::W, AccessKind::Rmw(_)) => body.push(Instr::Rmw {
                    dst: regs[i].clone(),
                    addr: AddrExpr::sym(loc.clone()),
                    op: RmwOp::Swap,
                    operand: dep_expr(value[i].expect("writes have values")),
                    annot,
                    has_read_event: true,
                }),
                (Dir::W, _) => body.push(Instr::Store {
                    addr: AddrExpr::sym(loc.clone()),
                    val: dep_expr(value[i].expect("writes have values")),
                    annot,
                }),
                (Dir::R, AccessKind::Rmw(_)) => body.push(Instr::Rmw {
                    dst: regs[i].clone(),
                    addr: AddrExpr::sym(loc.clone()),
                    op: RmwOp::FetchAdd,
                    operand: Expr::int(0),
                    annot,
                    has_read_event: true,
                }),
                (Dir::R, _) => body.push(Instr::Load {
                    dst: regs[i].clone().expect("reads have registers"),
                    addr: AddrExpr::sym(loc.clone()),
                    annot,
                }),
            };
            if matches!(s.in_edge, Some(Edge::Ctrl)) {
                // if (prev == observed) { access } else { access } — both
                // arms identical, so only the *control* dependency orders.
                let prev = regs[i - 1].clone().expect("ctrl source is a read");
                label_counter += 1;
                let lelse = format!(".else{label_counter}");
                let lend = format!(".end{label_counter}");
                body.push(Instr::BranchIf {
                    cond: Expr::eq(
                        Expr::eq(Expr::Reg(prev), Expr::int(1)),
                        Expr::int(0),
                    ),
                    target: lelse.clone(),
                });
                push_access(body);
                body.push(Instr::Jump(lend.clone()));
                body.push(Instr::Label(lelse));
                push_access(body);
                body.push(Instr::Label(lend));
            } else {
                push_access(body);
            }
        }

        // The witness condition.
        let mut atoms: Vec<Prop> = Vec::new();
        for (i, s) in slots.iter().enumerate() {
            let j = (i + 1) % n;
            match self.edges[i] {
                Edge::Rfe => {
                    // Reader observes this write's value.
                    let r = regs[j].clone().expect("rfe target reads");
                    atoms.push(Prop::atom(
                        StateKey::Reg(ThreadId(slots[j].thread as u8), r),
                        value[i].expect("rfe source writes"),
                    ));
                }
                Edge::Fre => {
                    // This read observes the co-predecessor of the next
                    // write: one less than its value (0 = init).
                    let r = regs[i].clone().expect("fre source reads");
                    atoms.push(Prop::atom(
                        StateKey::Reg(ThreadId(s.thread as u8), r),
                        value[j].expect("fre target writes") - 1,
                    ));
                }
                Edge::Coe => {
                    // The next write is co-last for the location.
                    atoms.push(Prop::atom(
                        StateKey::loc(loc_name(slots[j].loc)),
                        value[j].expect("coe target writes"),
                    ));
                }
                _ => {}
            }
        }
        // A witness that demands two different values for one register or
        // final location (e.g. a two-edge coherence cycle) can never be
        // observed; reject it instead of emitting a vacuous test.
        let mut demanded: Vec<(&StateKey, &telechat_common::Val)> = Vec::new();
        for atom in &atoms {
            if let Prop::Atom(key, val) = atom {
                if let Some((_, prev)) = demanded.iter().find(|(k, _)| *k == key) {
                    if *prev != val {
                        return Err(Error::Vacuous(format!(
                            "contradictory witness: {key} must be both {prev} and {val}"
                        )));
                    }
                } else {
                    demanded.push((key, val));
                }
            }
        }

        let prop = atoms
            .into_iter()
            .reduce(Prop::and)
            .unwrap_or(Prop::True);

        let locs = (0..=max_loc)
            .map(|i| {
                let atomic = !(0..n).any(|e| {
                    slots[e].loc == i && matches!(kinds[e], AccessKind::Plain)
                });
                LocDecl {
                    loc: loc_name(i).into(),
                    init: Val::Int(0),
                    width: telechat_litmus::Width::W64,
                    readonly: false,
                    atomic,
                }
            })
            .collect();

        let test = LitmusTest {
            name: self.name.clone(),
            arch: telechat_common::Arch::C11,
            locs,
            reg_init: Vec::new(),
            threads,
            condition: Condition::exists(prop),
            observed: Vec::new(),
        };
        test.validate()?;
        Ok(test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_cycle_synthesises() {
        // LB: R x; po; W y — rfe → R y; po; W x — rfe → (back).
        let t = CycleSpec::new(
            "LB",
            vec![
                Edge::Po { sameloc: false },
                Edge::Rfe,
                Edge::Po { sameloc: false },
                Edge::Rfe,
            ],
        )
        .synthesise()
        .unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.locs.len(), 2);
        // Atom order follows the cycle walk (P1's observation first).
        assert_eq!(
            t.condition.to_string(),
            "exists (1:r0=1 /\\ 0:r0=1)",
            "{t}"
        );
    }

    #[test]
    fn sb_cycle_synthesises() {
        // SB: W x; po; R y — fre → W y; po; R x — fre → (back).
        let t = CycleSpec::new(
            "SB",
            vec![
                Edge::Po { sameloc: false },
                Edge::Fre,
                Edge::Po { sameloc: false },
                Edge::Fre,
            ],
        )
        .synthesise()
        .unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.condition.to_string(), "exists (0:r0=0 /\\ 1:r0=0)");
    }

    #[test]
    fn mp_cycle_synthesises() {
        // MP: W x; po; W y — rfe → R y; po; R x — fre → (back).
        let t = CycleSpec::new(
            "MP",
            vec![
                Edge::Po { sameloc: false },
                Edge::Rfe,
                Edge::Po { sameloc: false },
                Edge::Fre,
            ],
        )
        .synthesise()
        .unwrap();
        assert_eq!(t.thread_count(), 2);
        // P1 reads y=1 (rfe) and x=0 (fre).
        assert_eq!(t.condition.to_string(), "exists (1:r0=1 /\\ 1:r1=0)");
    }

    #[test]
    fn three_thread_chain() {
        // LB3 (the Fig. 11 shape): three threads of R;F;W.
        let t = CycleSpec::new(
            "LB3",
            vec![
                Edge::Fenced {
                    order: Annot::Relaxed,
                },
                Edge::Rfe,
                Edge::Fenced {
                    order: Annot::Relaxed,
                },
                Edge::Rfe,
                Edge::Fenced {
                    order: Annot::Relaxed,
                },
                Edge::Rfe,
            ],
        )
        .synthesise()
        .unwrap();
        assert_eq!(t.thread_count(), 3);
        assert_eq!(t.locs.len(), 3);
    }

    #[test]
    fn rejects_cycles_without_comm() {
        let err = CycleSpec::new(
            "bad",
            vec![Edge::Po { sameloc: false }, Edge::Po { sameloc: false }],
        )
        .synthesise()
        .unwrap_err();
        assert!(err.to_string().contains("communication"));
    }

    #[test]
    fn rejects_single_comm_cycles_as_vacuous() {
        // One rfe cannot cross threads: the "external" edge would relate
        // two events of the same thread.
        let err = CycleSpec::new("bad", vec![Edge::Po { sameloc: true }, Edge::Rfe])
            .synthesise()
            .unwrap_err();
        assert!(matches!(err, Error::Vacuous(_)), "{err}");
    }

    #[test]
    fn rejects_contradictory_witness_as_vacuous() {
        // A two-edge coherence cycle asks the location to finish with both
        // writes' values.
        let err = CycleSpec::new("bad", vec![Edge::Coe, Edge::Coe])
            .synthesise()
            .unwrap_err();
        assert!(matches!(err, Error::Vacuous(_)), "{err}");
        assert!(err.to_string().contains("contradictory"), "{err}");
    }

    #[test]
    fn dir_overrides_pin_free_events() {
        // Interior event of a three-long po run: unconstrained, defaults to
        // a write; a Dir::R override turns it into a read.
        let edges = vec![
            Edge::Po { sameloc: false },
            Edge::Po { sameloc: false },
            Edge::Rfe,
            Edge::Po { sameloc: false },
            Edge::Rfe,
        ];
        let w = CycleSpec::new("w", edges.clone()).synthesise().unwrap();
        let r = CycleSpec::new("r", edges.clone())
            .dir(1, Dir::R)
            .synthesise()
            .unwrap();
        assert_ne!(w.threads, r.threads);
        let reads = |t: &telechat_litmus::LitmusTest| {
            t.threads[0]
                .iter()
                .filter(|i| matches!(i, Instr::Load { .. }))
                .count()
        };
        assert_eq!(reads(&r), reads(&w) + 1, "override adds a read\n{r}\n{w}");
        // Overrides that clash with an edge constraint are rejected.
        let err = CycleSpec::new("bad", edges)
            .dir(2, Dir::R) // event 2 is the source of an rfe: must write
            .synthesise()
            .unwrap_err();
        assert!(err.to_string().contains("direction clash"), "{err}");
    }

    #[test]
    fn rejects_direction_clash() {
        // Rfe target must read, but Rfe source must write: W—rfe→?—rfe→…
        // the middle event would need to be both R (target) and W (source).
        let err = CycleSpec::new("bad", vec![Edge::Rfe, Edge::Rfe])
            .synthesise()
            .unwrap_err();
        assert!(err.to_string().contains("direction clash"), "{err}");
    }

    #[test]
    fn dependency_edges_produce_dep_code() {
        let t = CycleSpec::new("LB+deps", vec![Edge::Dp, Edge::Rfe, Edge::Dp, Edge::Rfe])
            .synthesise()
            .unwrap();
        // Stores' values mention the previous read's register.
        let has_dep = t.threads.iter().any(|b| {
            b.iter().any(|i| match i {
                Instr::Store { val, .. } => !val.regs_read().is_empty(),
                _ => false,
            })
        });
        assert!(has_dep, "{t}");
    }

    #[test]
    fn ctrl_edges_produce_branches() {
        let t = CycleSpec::new(
            "LB+ctrls",
            vec![Edge::Ctrl, Edge::Rfe, Edge::Ctrl, Edge::Rfe],
        )
        .synthesise()
        .unwrap();
        let branches = t.threads[0]
            .iter()
            .filter(|i| matches!(i, Instr::BranchIf { .. }))
            .count();
        assert_eq!(branches, 1, "{t}");
    }
}
