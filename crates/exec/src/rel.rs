//! Relational algebra over events, on dense bitsets.
//!
//! Memory models are predicates over *relations on events* (paper Def. II.1).
//! This module provides the finite relation type the enumerator builds and
//! the mini-Cat evaluator computes with: union, intersection, difference,
//! composition, inverses, closures, and the acyclicity/irreflexivity checks
//! models are made of.
//!
//! # Representation
//!
//! Events in one candidate execution are dense `EventId`s, so an [`EventSet`]
//! is a vector of `u64` words (one bit per event) and a [`Relation`] is a
//! square bit-matrix: one row of words per source event, bit `b` of row `a`
//! set iff `(a, b)` is an edge. Every algebraic operation is then
//! word-parallel — union/intersection/difference are single-pass `|`/`&`
//! loops, composition OR-combines successor rows, and transitive closure is
//! a Floyd–Warshall sweep over rows — which is what makes the per-candidate
//! model evaluation in the `herd(P, M)` hot path (paper §IV-E's state
//! explosion) cheap: a litmus-scale relation is a handful of cache lines,
//! not a tree of heap nodes.
//!
//! The previous `BTreeSet`-of-pairs representation survives only as the
//! *oracle* in this module's differential property tests (`bitset_oracle`),
//! which pin every operation here to the naive pair-set semantics on
//! randomized graphs.
//!
//! # Word kernels and the `simd` feature
//!
//! The word loops themselves live in [`crate::kernels`]: every row
//! union/intersection/difference, the `seq` row OR-combines, the
//! Floyd–Warshall inner loop and the popcount/zero-test reductions call the
//! kernel functions rather than open-coding the loop. With the `simd` cargo
//! feature enabled those resolve to the chunked ([`crate::kernels::chunked`])
//! implementations — fixed [`crate::kernels::chunked::LANES`]-word blocks
//! that LLVM autovectorises into `u64x4`/`u64x8` vector ops — and without it
//! to the original scalar loops. `seq` and `transitive_closure` additionally
//! skip all-zero source rows, all-zero target rows, and pivots no initial
//! edge enters, which on the sparse deep-shape graphs of the fuzz sampler
//! skips most of the O(n²·stride) work outright.
//!
//! # Full-traversal accounting
//!
//! [`Relation::is_acyclic`], [`Relation::union_is_acyclic`] and
//! [`Relation::topological_order`] each count one *full traversal* in a
//! process-wide counter ([`full_traversals`]). The incremental enumeration
//! engine maintains reachability state per DFS edge (see [`crate::incr`])
//! instead of re-running these per node; a pin test asserts the counter
//! stays flat during enumeration under the built-in models.

use crate::kernels;
use std::fmt;
use telechat_common::EventId;
use telechat_obs::LocalMetric;

/// Bits per word of the bitset representation.
const WORD: usize = 64;

/// Number of words needed to hold `n` bits.
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD)
}

/// The current value of this thread's full-traversal counter (monotone).
///
/// The cell itself lives in the process-wide metrics layer
/// ([`telechat_obs::LocalMetric::FullTraversals`]) — still per thread, so
/// concurrently running tests cannot perturb a pin, and still counted
/// unconditionally because pin tests assert on it with telemetry off.
pub fn full_traversals() -> u64 {
    telechat_obs::local_get(LocalMetric::FullTraversals)
}

fn count_traversal() {
    telechat_obs::local_add(LocalMetric::FullTraversals, 1);
}

/// Iterates the set bit indices of a word slice, ascending.
struct BitIter<'a> {
    words: &'a [u64],
    idx: usize,
    cur: u64,
}

impl<'a> BitIter<'a> {
    fn new(words: &'a [u64]) -> BitIter<'a> {
        BitIter {
            words,
            idx: 0,
            cur: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.idx * WORD + b);
            }
            self.idx += 1;
            if self.idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.idx];
        }
    }
}

/// A set of events: one bit per dense `EventId`.
#[derive(Debug, Clone, Default)]
pub struct EventSet {
    words: Vec<u64>,
    len: usize,
}

impl EventSet {
    /// The empty set.
    pub fn new() -> EventSet {
        EventSet::default()
    }

    /// An empty set pre-sized for events `0..n` (no reallocation while ids
    /// stay below `n`).
    pub fn with_capacity(n: usize) -> EventSet {
        EventSet {
            words: vec![0; words_for(n)],
            len: 0,
        }
    }

    fn grow_for(&mut self, idx: usize) {
        let need = words_for(idx + 1);
        if need > self.words.len() {
            self.words.resize(need.next_power_of_two(), 0);
        }
    }

    /// Inserts an event.
    pub fn insert(&mut self, e: EventId) -> bool {
        let i = e.index();
        self.grow_for(i);
        let w = &mut self.words[i / WORD];
        let mask = 1u64 << (i % WORD);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes an event.
    pub fn remove(&mut self, e: EventId) -> bool {
        let i = e.index();
        if i / WORD >= self.words.len() {
            return false;
        }
        let w = &mut self.words[i / WORD];
        let mask = 1u64 << (i % WORD);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        let i = e.index();
        i / WORD < self.words.len() && self.words[i / WORD] & (1u64 << (i % WORD)) != 0
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates events in id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        BitIter::new(&self.words).map(|i| EventId(i as u32))
    }

    /// The backing words (zero-extended semantics beyond the slice).
    fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    fn recount(&mut self) {
        self.len = kernels::count_ones(&self.words);
    }

    /// In-place union (`self |= other`) — no allocation beyond capacity
    /// growth; this is the variant inner loops (the Cat fixpoint) use.
    pub fn union_with(&mut self, other: &EventSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        kernels::or_assign(&mut self.words, &other.words);
        self.recount();
    }

    /// In-place intersection (`self &= other`).
    pub fn inter_with(&mut self, other: &EventSet) {
        kernels::and_assign(&mut self.words, &other.words);
        self.recount();
    }

    /// In-place difference (`self \= other`).
    pub fn diff_with(&mut self, other: &EventSet) {
        kernels::andnot_assign(&mut self.words, &other.words);
        self.recount();
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Set intersection.
    #[must_use]
    pub fn inter(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.inter_with(other);
        out
    }

    /// Set difference.
    #[must_use]
    pub fn diff(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.diff_with(other);
        out
    }

    /// One past the highest id that could be set.
    fn bit_capacity(&self) -> usize {
        self.words.len() * WORD
    }

    /// The identity relation on this set (`[S]` in Cat).
    #[must_use]
    pub fn identity(&self) -> Relation {
        let mut r = Relation::with_nodes(self.bit_capacity());
        for e in self.iter() {
            r.insert(e, e);
        }
        r
    }

    /// Cartesian product `self × other` (`S * T` in Cat).
    #[must_use]
    pub fn cross(&self, other: &EventSet) -> Relation {
        let n = self.bit_capacity().max(other.bit_capacity());
        let mut r = Relation::with_nodes(n);
        for a in self.iter() {
            r.insert_row(a, other);
        }
        r
    }
}

impl PartialEq for EventSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| self.word(i) == other.word(i))
    }
}

impl Eq for EventSet {}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut s = EventSet::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A binary relation over events: a square bit-matrix, one row of words per
/// source event (bit `b` of row `a` set iff the edge `(a, b)` is present).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Node capacity: number of allocated rows == number of column bits per
    /// row. Always a power of two ≥ 64 (or 0 for the empty relation).
    cap: usize,
    /// Words per row (`cap / 64`).
    stride: usize,
    /// One past the highest node id ever touched; bounds all row loops.
    nodes: usize,
    /// Row-major bits: row `a` occupies `bits[a*stride .. (a+1)*stride]`.
    bits: Vec<u64>,
    /// Cached edge count.
    edges: usize,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// An empty relation pre-sized for nodes `0..n`.
    pub fn with_nodes(n: usize) -> Relation {
        if n == 0 {
            return Relation::default();
        }
        let cap = n.next_power_of_two().max(WORD);
        Relation {
            cap,
            stride: cap / WORD,
            nodes: n,
            bits: vec![0; cap * (cap / WORD)],
            edges: 0,
        }
    }

    /// Grows capacity so node index `idx` is addressable.
    fn ensure_node(&mut self, idx: usize) {
        if idx < self.cap {
            return;
        }
        let new_cap = (idx + 1).next_power_of_two().max(WORD);
        let new_stride = new_cap / WORD;
        let mut new_bits = vec![0u64; new_cap * new_stride];
        for a in 0..self.cap {
            let src = &self.bits[a * self.stride..(a + 1) * self.stride];
            new_bits[a * new_stride..a * new_stride + self.stride].copy_from_slice(src);
        }
        self.cap = new_cap;
        self.stride = new_stride;
        self.bits = new_bits;
    }

    /// Row `a` as a word slice (empty if out of capacity).
    fn row(&self, a: usize) -> &[u64] {
        if a < self.cap {
            &self.bits[a * self.stride..(a + 1) * self.stride]
        } else {
            &[]
        }
    }

    /// Row `a` mutably; caller must have ensured capacity.
    fn row_mut(&mut self, a: usize) -> &mut [u64] {
        let s = self.stride;
        &mut self.bits[a * s..(a + 1) * s]
    }

    fn recount(&mut self) {
        self.edges = kernels::count_ones(&self.bits);
    }

    /// Inserts an edge.
    pub fn insert(&mut self, from: EventId, to: EventId) -> bool {
        let (a, b) = (from.index(), to.index());
        let m = a.max(b);
        self.ensure_node(m);
        self.nodes = self.nodes.max(m + 1);
        let w = &mut self.bits[a * self.stride + b / WORD];
        let mask = 1u64 << (b % WORD);
        if *w & mask == 0 {
            *w |= mask;
            self.edges += 1;
            true
        } else {
            false
        }
    }

    /// Removes an edge (the enumeration engine's backtracking undo).
    pub fn remove(&mut self, from: EventId, to: EventId) -> bool {
        let (a, b) = (from.index(), to.index());
        if a >= self.cap || b >= self.cap {
            return false;
        }
        let w = &mut self.bits[a * self.stride + b / WORD];
        let mask = 1u64 << (b % WORD);
        if *w & mask != 0 {
            *w &= !mask;
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// ORs a whole event set into row `from` (bulk edge insertion) —
    /// the word-parallel builder the derived-relation constructors use.
    pub fn insert_row(&mut self, from: EventId, targets: &EventSet) {
        let a = from.index();
        let hi = targets.iter().last().map(EventId::index);
        let m = hi.map_or(a, |h| h.max(a));
        self.ensure_node(m);
        self.nodes = self.nodes.max(m + 1);
        let stride = self.stride;
        let n = words_for(targets.bit_capacity()).min(stride);
        self.edges += kernels::or_assign_added(
            &mut self.bits[a * stride..a * stride + n],
            &targets.words,
        );
    }

    /// The strict total order over each chain, as one relation: every pair
    /// `(c[i], c[j])` with `i < j`, for every chain `c`.
    ///
    /// Built back-to-front per chain: row `c[i]` is row `c[i+1]` plus the
    /// bit for `c[i+1]`, one word-parallel OR per element. The enumerator
    /// uses it for transitive `po` (one chain per thread) and per-location
    /// `co` prefixes.
    #[must_use]
    pub fn total_order<'a, I>(chains: I) -> Relation
    where
        I: IntoIterator<Item = &'a [EventId]>,
    {
        let chains: Vec<&[EventId]> = chains.into_iter().collect();
        let max = chains
            .iter()
            .flat_map(|c| c.iter())
            .map(|e| e.index())
            .max();
        let Some(max) = max else {
            return Relation::new();
        };
        let mut r = Relation::with_nodes(max + 1);
        let stride = r.stride;
        let mut tmp = vec![0u64; stride];
        for chain in chains {
            for i in (0..chain.len().saturating_sub(1)).rev() {
                let succ = chain[i + 1].index();
                tmp.copy_from_slice(r.row(succ));
                tmp[succ / WORD] |= 1u64 << (succ % WORD);
                r.row_mut(chain[i].index()).copy_from_slice(&tmp);
            }
        }
        r.recount();
        r
    }

    /// Edge membership.
    pub fn contains(&self, from: EventId, to: EventId) -> bool {
        let (a, b) = (from.index(), to.index());
        a < self.cap && b < self.cap && self.bits[a * self.stride + b / WORD] & (1u64 << (b % WORD)) != 0
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges
    }

    /// True if the relation has no edges (`empty r` in Cat).
    pub fn is_empty(&self) -> bool {
        self.edges == 0
    }

    /// Iterates edges in lexicographic `(from, to)` order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        (0..self.nodes).flat_map(move |a| {
            BitIter::new(self.row(a)).map(move |b| (EventId(a as u32), EventId(b as u32)))
        })
    }

    /// Iterates the successors of `from` in id order.
    pub fn successors(&self, from: EventId) -> impl Iterator<Item = EventId> + '_ {
        BitIter::new(self.row(from.index())).map(|b| EventId(b as u32))
    }

    /// In-place union (`self |= other`).
    pub fn union_with(&mut self, other: &Relation) {
        if other.edges == 0 {
            return;
        }
        self.ensure_node(other.nodes - 1);
        self.nodes = self.nodes.max(other.nodes);
        let words = words_for(other.nodes).min(self.stride);
        let mut added = 0usize;
        for a in 0..other.nodes {
            let or = other.row(a);
            let base = a * self.stride;
            added += kernels::or_assign_added(
                &mut self.bits[base..base + words],
                &or[..words.min(or.len())],
            );
        }
        self.edges += added;
    }

    /// In-place intersection (`self &= other`).
    pub fn inter_with(&mut self, other: &Relation) {
        for a in 0..self.nodes {
            let base = a * self.stride;
            let stride = self.stride;
            kernels::and_assign(&mut self.bits[base..base + stride], other.row(a));
        }
        self.recount();
    }

    /// In-place difference (`self \= other`).
    pub fn diff_with(&mut self, other: &Relation) {
        for a in 0..self.nodes {
            let base = a * self.stride;
            let stride = self.stride;
            kernels::andnot_assign(&mut self.bits[base..base + stride], other.row(a));
        }
        self.recount();
    }

    /// Union (`r | s`).
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Intersection (`r & s`).
    #[must_use]
    pub fn inter(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.inter_with(other);
        out
    }

    /// Difference (`r \ s`).
    #[must_use]
    pub fn diff(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.diff_with(other);
        out
    }

    /// Relational composition (`r ; s`): `{(a,c) | ∃b. r(a,b) ∧ s(b,c)}` —
    /// each output row is the OR of the successor rows of the first
    /// relation's targets.
    #[must_use]
    pub fn seq(&self, other: &Relation) -> Relation {
        let n = self.nodes.max(other.nodes);
        let mut out = Relation::with_nodes(n);
        if self.edges == 0 || other.edges == 0 {
            return out;
        }
        for a in 0..self.nodes {
            let ra = self.row(a);
            // All-zero source rows contribute nothing; skip before iterating.
            if kernels::is_zero(ra) {
                continue;
            }
            let base = a * out.stride;
            let stride = out.stride;
            for b in BitIter::new(ra) {
                let br = other.row(b);
                if kernels::is_zero(br) {
                    continue;
                }
                kernels::or_assign(&mut out.bits[base..base + stride], br);
            }
        }
        out.recount();
        out
    }

    /// Inverse (`r^-1`).
    #[must_use]
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::with_nodes(self.nodes);
        for (a, b) in self.iter() {
            out.insert(b, a);
        }
        out
    }

    /// Transitive closure (`r+`): a Floyd–Warshall sweep over bit rows.
    ///
    /// Pivots with an all-zero row are skipped (nothing to propagate), and
    /// so are pivots no *initial* edge enters: a column bit can only ever be
    /// copied from a row that already had it, so a column empty in the input
    /// stays empty throughout the sweep and its pivot pass is a no-op.
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut c = self.clone();
        let n = c.nodes;
        let stride = c.stride;
        let mut incoming = vec![0u64; stride];
        for a in 0..n {
            kernels::or_assign(&mut incoming, c.row(a));
        }
        let mut tmp = vec![0u64; stride];
        for k in 0..n {
            let (kw, kb) = (k / WORD, 1u64 << (k % WORD));
            if incoming[kw] & kb == 0 {
                continue;
            }
            tmp.copy_from_slice(c.row(k));
            if kernels::is_zero(&tmp) {
                continue;
            }
            for a in 0..n {
                let base = a * stride;
                if c.bits[base + kw] & kb != 0 {
                    kernels::or_assign(&mut c.bits[base..base + stride], &tmp);
                }
            }
        }
        c.recount();
        c
    }

    /// Reflexive-transitive closure over a universe of events (`r*`).
    ///
    /// Cat's `r*` is reflexive over *all* events of the execution, so the
    /// universe must be supplied.
    #[must_use]
    pub fn reflexive_transitive_closure(&self, universe: &EventSet) -> Relation {
        let mut c = self.transitive_closure();
        for e in universe.iter() {
            c.insert(e, e);
        }
        c
    }

    /// Reflexive closure over a universe (`r?`).
    #[must_use]
    pub fn optional(&self, universe: &EventSet) -> Relation {
        let mut c = self.clone();
        for e in universe.iter() {
            c.insert(e, e);
        }
        c
    }

    /// The set of edge sources (`domain(r)`).
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::with_capacity(self.nodes);
        for a in 0..self.nodes {
            if !kernels::is_zero(self.row(a)) {
                s.insert(EventId(a as u32));
            }
        }
        s
    }

    /// The set of edge targets (`range(r)`).
    pub fn range(&self) -> EventSet {
        let mut s = EventSet::with_capacity(self.nodes);
        for a in 0..self.nodes {
            kernels::or_assign(&mut s.words, self.row(a));
        }
        s.recount();
        s
    }

    /// Restricts edge sources to `s` (`[s];r`).
    #[must_use]
    pub fn restrict_domain(&self, s: &EventSet) -> Relation {
        let mut out = self.clone();
        for a in 0..out.nodes {
            if !s.contains(EventId(a as u32)) {
                out.row_mut(a).fill(0);
            }
        }
        out.recount();
        out
    }

    /// Restricts edge targets to `s` (`r;[s]`).
    #[must_use]
    pub fn restrict_range(&self, s: &EventSet) -> Relation {
        let mut out = self.clone();
        for a in 0..out.nodes {
            let base = a * out.stride;
            let stride = out.stride;
            kernels::and_assign(&mut out.bits[base..base + stride], &s.words);
        }
        out.recount();
        out
    }

    /// The edges of `self` absent from `other`, in lexicographic order —
    /// a word-parallel row difference. The staged Cat engine diffs each
    /// monotone constraint value against its previous value per pushed
    /// edge; monotonicity guarantees the result is exactly the delta.
    pub fn edge_diff(&self, other: &Relation) -> Vec<(EventId, EventId)> {
        let mut out = Vec::new();
        self.edge_diff_into(other, &mut out);
        out
    }

    /// [`Relation::edge_diff`] into a caller-owned buffer (cleared first) —
    /// the staged Cat engine calls this once per DFS push and recycles the
    /// buffer, so the steady-state push path allocates nothing.
    pub fn edge_diff_into(&self, other: &Relation, out: &mut Vec<(EventId, EventId)>) {
        out.clear();
        for a in 0..self.nodes {
            let ra = self.row(a);
            if kernels::is_zero(ra) {
                continue;
            }
            let rb = other.row(a);
            for (i, &w) in ra.iter().enumerate() {
                let mut m = w & !rb.get(i).copied().unwrap_or(0);
                while m != 0 {
                    let b = i * WORD + m.trailing_zeros() as usize;
                    m &= m - 1;
                    out.push((EventId(a as u32), EventId(b as u32)));
                }
            }
        }
    }

    /// True if the relation has no edge `(e, e)` (`irreflexive r` in Cat).
    pub fn is_irreflexive(&self) -> bool {
        (0..self.nodes).all(|a| self.bits[a * self.stride + a / WORD] & (1u64 << (a % WORD)) == 0)
    }

    /// The words (width `words_for(self.nodes)`) marking nodes with at least
    /// one incident edge.
    fn active_words(&self) -> Vec<u64> {
        let aw = words_for(self.nodes);
        let mut active = vec![0u64; aw];
        for a in 0..self.nodes {
            let row = self.row(a);
            if !kernels::is_zero(row) {
                active[a / WORD] |= 1u64 << (a % WORD);
                kernels::or_assign(&mut active, row);
            }
        }
        active
    }

    /// Kahn-style elimination: repeatedly drops nodes with no incoming edge
    /// from `remaining`; acyclic iff everything drops. One *full traversal*
    /// (counted) — the enumeration engine's incremental state exists so this
    /// never runs per DFS node.
    fn eliminate(rows: &dyn Fn(usize) -> u64, aw: usize, mut remaining: Vec<u64>) -> bool {
        count_traversal();
        loop {
            let mut incoming = vec![0u64; aw];
            for a in BitIter::new(&remaining) {
                for (i, inc) in incoming.iter_mut().enumerate() {
                    *inc |= rows(a * aw + i);
                }
            }
            let mut progressed = false;
            let mut empty = true;
            for i in 0..aw {
                let ready = remaining[i] & !incoming[i];
                if ready != 0 {
                    remaining[i] &= !ready;
                    progressed = true;
                }
                if remaining[i] != 0 {
                    empty = false;
                }
            }
            if empty {
                return true;
            }
            if !progressed {
                return false;
            }
        }
    }

    /// True if the *union* of `rels` is acyclic, without materialising the
    /// union as an edge set: the union's rows are OR-combined on the fly,
    /// word-parallel. Counts one full traversal.
    pub fn union_is_acyclic(rels: &[&Relation]) -> bool {
        let n = rels.iter().map(|r| r.nodes).max().unwrap_or(0);
        let aw = words_for(n);
        let mut active = vec![0u64; aw];
        for r in rels {
            kernels::or_assign(&mut active, &r.active_words());
        }
        let rows = |flat: usize| -> u64 {
            let (a, i) = (flat / aw.max(1), flat % aw.max(1));
            rels.iter()
                .map(|r| r.row(a).get(i).copied().unwrap_or(0))
                .fold(0, |acc, w| acc | w)
        };
        Relation::eliminate(&rows, aw, active)
    }

    /// True if the relation is acyclic (`acyclic r` in Cat): its transitive
    /// closure is irreflexive. Counts one full traversal.
    pub fn is_acyclic(&self) -> bool {
        let aw = words_for(self.nodes);
        let active = self.active_words();
        let rows = |flat: usize| -> u64 {
            let (a, i) = (flat / aw.max(1), flat % aw.max(1));
            self.row(a).get(i).copied().unwrap_or(0)
        };
        Relation::eliminate(&rows, aw, active)
    }

    /// A topological order of the nodes (those with at least one incident
    /// edge) if the relation is acyclic, smallest-id-first among ready
    /// nodes. Counts one full traversal.
    pub fn topological_order(&self) -> Option<Vec<EventId>> {
        count_traversal();
        let aw = words_for(self.nodes);
        let mut remaining = self.active_words();
        let total: usize = remaining.iter().map(|w| w.count_ones() as usize).sum();
        let mut order = Vec::with_capacity(total);
        for _ in 0..total {
            let mut incoming = vec![0u64; aw];
            for a in BitIter::new(&remaining) {
                kernels::or_assign(&mut incoming, self.row(a));
            }
            // Smallest ready node.
            let mut picked = None;
            for i in 0..aw {
                let ready = remaining[i] & !incoming[i];
                if ready != 0 {
                    picked = Some(i * WORD + ready.trailing_zeros() as usize);
                    break;
                }
            }
            let n = picked?;
            remaining[n / WORD] &= !(1u64 << (n % WORD));
            order.push(EventId(n as u32));
        }
        Some(order)
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.edges != other.edges {
            return false;
        }
        let n = self.nodes.max(other.nodes);
        for a in 0..n {
            let (ra, rb) = (self.row(a), other.row(a));
            for i in 0..ra.len().max(rb.len()) {
                if ra.get(i).copied().unwrap_or(0) != rb.get(i).copied().unwrap_or(0) {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for Relation {}

impl FromIterator<(EventId, EventId)> for Relation {
    fn from_iter<I: IntoIterator<Item = (EventId, EventId)>>(iter: I) -> Self {
        let pairs: Vec<(EventId, EventId)> = iter.into_iter().collect();
        let max = pairs.iter().map(|(a, b)| a.index().max(b.index())).max();
        let mut r = match max {
            Some(m) => Relation::with_nodes(m + 1),
            None => Relation::new(),
        };
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}->{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> Relation {
        pairs
            .iter()
            .map(|&(a, b)| (EventId(a), EventId(b)))
            .collect()
    }

    fn set(ids: &[u32]) -> EventSet {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn seq_composes() {
        let r = rel(&[(0, 1), (1, 2)]);
        let s = rel(&[(1, 5), (2, 6)]);
        assert_eq!(r.seq(&s), rel(&[(0, 5), (1, 6)]));
    }

    #[test]
    fn transitive_closure_chains() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(EventId(0), EventId(3)));
        assert_eq!(tc.len(), 6);
    }

    #[test]
    fn acyclicity() {
        assert!(rel(&[(0, 1), (1, 2)]).is_acyclic());
        assert!(!rel(&[(0, 1), (1, 0)]).is_acyclic());
        assert!(!rel(&[(0, 0)]).is_acyclic());
        assert!(Relation::new().is_acyclic());
    }

    #[test]
    fn irreflexivity() {
        assert!(rel(&[(0, 1)]).is_irreflexive());
        assert!(!rel(&[(0, 1), (2, 2)]).is_irreflexive());
    }

    #[test]
    fn identity_and_cross() {
        let s = set(&[1, 2]);
        assert_eq!(s.identity(), rel(&[(1, 1), (2, 2)]));
        assert_eq!(
            s.cross(&set(&[7])),
            rel(&[(1, 7), (2, 7)])
        );
    }

    #[test]
    fn domain_range_restrict() {
        let r = rel(&[(0, 1), (2, 3)]);
        assert_eq!(r.domain(), set(&[0, 2]));
        assert_eq!(r.range(), set(&[1, 3]));
        assert_eq!(r.restrict_domain(&set(&[0])), rel(&[(0, 1)]));
        assert_eq!(r.restrict_range(&set(&[3])), rel(&[(2, 3)]));
    }

    #[test]
    fn topological_order_respects_edges() {
        let r = rel(&[(2, 1), (1, 0)]);
        let order = r.topological_order().unwrap();
        let pos = |e: u32| order.iter().position(|&x| x == EventId(e)).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert_eq!(rel(&[(0, 1), (1, 0)]).topological_order(), None);
    }

    #[test]
    fn optional_is_reflexive_over_universe() {
        let r = rel(&[(0, 1)]);
        let u = set(&[0, 1, 2]);
        let opt = r.optional(&u);
        assert!(opt.contains(EventId(2), EventId(2)));
        assert!(opt.contains(EventId(0), EventId(1)));
        assert_eq!(opt.len(), 4);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut r = Relation::new();
        assert!(r.insert(EventId(3), EventId(70)));
        assert!(!r.insert(EventId(3), EventId(70)));
        assert!(r.contains(EventId(3), EventId(70)));
        assert_eq!(r.len(), 1);
        assert!(r.remove(EventId(3), EventId(70)));
        assert!(!r.remove(EventId(3), EventId(70)));
        assert!(r.is_empty());
        assert_eq!(r, Relation::new());
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut big = Relation::with_nodes(200);
        big.insert(EventId(0), EventId(1));
        let mut small = Relation::new();
        small.insert(EventId(0), EventId(1));
        assert_eq!(big, small);
        let mut s_big = EventSet::with_capacity(500);
        s_big.insert(EventId(2));
        let mut s_small = EventSet::new();
        s_small.insert(EventId(2));
        assert_eq!(s_big, s_small);
    }

    #[test]
    fn iter_is_sorted_lexicographically() {
        let r = rel(&[(5, 0), (0, 5), (0, 1), (3, 3)]);
        let edges: Vec<(u32, u32)> = r.iter().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 5), (3, 3), (5, 0)]);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let r = rel(&[(0, 1), (1, 2), (64, 65)]);
        let s = rel(&[(1, 2), (2, 3)]);
        let mut u = r.clone();
        u.union_with(&s);
        assert_eq!(u, r.union(&s));
        let mut i = r.clone();
        i.inter_with(&s);
        assert_eq!(i, r.inter(&s));
        let mut d = r.clone();
        d.diff_with(&s);
        assert_eq!(d, r.diff(&s));
        let a = set(&[0, 1, 64]);
        let b = set(&[1, 64, 65]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
    }

    #[test]
    fn full_traversal_counter_increments() {
        let before = full_traversals();
        let r = rel(&[(0, 1), (1, 2)]);
        assert!(r.is_acyclic());
        assert!(Relation::union_is_acyclic(&[&r]));
        r.topological_order().unwrap();
        assert!(full_traversals() >= before + 3);
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic property tests over pseudo-random relations.
    //!
    //! The build environment vendors no registry crates, so instead of
    //! `proptest` these run each algebraic law over a fixed stream of
    //! relations generated with the workspace-shared deterministic
    //! [`XorShiftRng`]. The stream is seeded per property, so failures
    //! are reproducible by construction.

    use super::*;
    use telechat_common::XorShiftRng as Rng;

    const CASES: usize = 200;

    fn random_relation(rng: &mut Rng, max_node: u32, max_edges: u64) -> Relation {
        let edges = rng.below(max_edges + 1);
        (0..edges)
            .map(|_| {
                (
                    EventId(rng.below(u64::from(max_node)) as u32),
                    EventId(rng.below(u64::from(max_node)) as u32),
                )
            })
            .collect()
    }

    fn for_each_relation(seed: u64, mut check: impl FnMut(Relation)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..CASES {
            check(random_relation(&mut rng, 8, 20));
        }
    }

    fn for_each_triple(seed: u64, mut check: impl FnMut(Relation, Relation, Relation)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..CASES {
            let r = random_relation(&mut rng, 6, 12);
            let s = random_relation(&mut rng, 6, 12);
            let t = random_relation(&mut rng, 6, 12);
            check(r, s, t);
        }
    }

    #[test]
    fn closure_is_idempotent() {
        for_each_relation(1, |r| {
            let c1 = r.transitive_closure();
            let c2 = c1.transitive_closure();
            assert_eq!(c1, c2, "relation {r}");
        });
    }

    #[test]
    fn closure_contains_relation() {
        for_each_relation(2, |r| {
            let c = r.transitive_closure();
            assert!(r.iter().all(|(a, b)| c.contains(a, b)), "relation {r}");
        });
    }

    #[test]
    fn inverse_is_involutive() {
        for_each_relation(3, |r| {
            assert_eq!(r.inverse().inverse(), r, "relation {r}");
        });
    }

    #[test]
    fn seq_associative() {
        for_each_triple(4, |r, s, t| {
            assert_eq!(r.seq(&s).seq(&t), r.seq(&s.seq(&t)));
        });
    }

    #[test]
    fn union_distributes_over_seq() {
        for_each_triple(5, |r, s, t| {
            assert_eq!(r.union(&s).seq(&t), r.seq(&t).union(&s.seq(&t)));
        });
    }

    #[test]
    fn acyclic_iff_topological_order_exists() {
        for_each_relation(6, |r| {
            assert_eq!(r.is_acyclic(), r.topological_order().is_some(), "{r}");
        });
    }

    #[test]
    fn topological_order_sound() {
        for_each_relation(7, |r| {
            if let Some(order) = r.topological_order() {
                let pos: std::collections::BTreeMap<_, _> =
                    order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
                for (a, b) in r.iter() {
                    assert!(pos[&a] < pos[&b], "edge {a}->{b} violates order of {r}");
                }
            }
        });
    }

    #[test]
    fn acyclic_relation_closure_is_irreflexive() {
        for_each_relation(8, |r| {
            assert_eq!(r.is_acyclic(), r.transitive_closure().is_irreflexive(), "{r}");
        });
    }

    #[test]
    fn inverse_of_seq_flips() {
        for_each_triple(9, |r, s, _| {
            assert_eq!(r.seq(&s).inverse(), s.inverse().seq(&r.inverse()));
        });
    }
}

#[cfg(test)]
mod bitset_oracle {
    //! Differential tests: every bitset operation against a kept
    //! `BTreeSet`-of-pairs oracle (the pre-bitset representation) on
    //! randomized small graphs. The oracle implementations below are the
    //! literal old algorithms, so any semantic drift in the word-parallel
    //! rewrites shows up as a mismatch with a reproducible seed.

    use super::*;
    use std::collections::{BTreeMap, BTreeSet};
    use telechat_common::XorShiftRng as Rng;

    /// The pair-set oracle: the old `Relation` representation.
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    struct PairRel(BTreeSet<(u32, u32)>);

    impl PairRel {
        fn from_bitset(r: &Relation) -> PairRel {
            PairRel(r.iter().map(|(a, b)| (a.0, b.0)).collect())
        }

        fn to_bitset(&self) -> Relation {
            self.0
                .iter()
                .map(|&(a, b)| (EventId(a), EventId(b)))
                .collect()
        }

        fn union(&self, o: &PairRel) -> PairRel {
            PairRel(self.0.union(&o.0).copied().collect())
        }

        fn inter(&self, o: &PairRel) -> PairRel {
            PairRel(self.0.intersection(&o.0).copied().collect())
        }

        fn diff(&self, o: &PairRel) -> PairRel {
            PairRel(self.0.difference(&o.0).copied().collect())
        }

        fn seq(&self, o: &PairRel) -> PairRel {
            let mut out = BTreeSet::new();
            for &(a, b) in &self.0 {
                for &(b2, c) in &o.0 {
                    if b == b2 {
                        out.insert((a, c));
                    }
                }
            }
            PairRel(out)
        }

        fn inverse(&self) -> PairRel {
            PairRel(self.0.iter().map(|&(a, b)| (b, a)).collect())
        }

        fn transitive_closure(&self) -> PairRel {
            let mut closure = self.clone();
            loop {
                let step = closure.seq(self);
                let merged = closure.union(&step);
                if merged.0.len() == closure.0.len() {
                    return closure;
                }
                closure = merged;
            }
        }

        fn is_irreflexive(&self) -> bool {
            self.0.iter().all(|(a, b)| a != b)
        }

        /// The old Kahn's-algorithm acyclicity check, verbatim.
        fn is_acyclic(&self) -> bool {
            let nodes: BTreeSet<u32> = self.0.iter().flat_map(|&(a, b)| [a, b]).collect();
            let mut indegree: BTreeMap<u32, usize> = nodes.iter().map(|&n| (n, 0)).collect();
            for &(_, b) in &self.0 {
                *indegree.get_mut(&b).expect("node present") += 1;
            }
            let mut queue: Vec<u32> = indegree
                .iter()
                .filter(|(_, &d)| d == 0)
                .map(|(&n, _)| n)
                .collect();
            let mut visited = 0usize;
            while let Some(n) = queue.pop() {
                visited += 1;
                for &(a, b) in &self.0 {
                    if a == n {
                        let d = indegree.get_mut(&b).expect("node present");
                        *d -= 1;
                        if *d == 0 {
                            queue.push(b);
                        }
                    }
                }
            }
            visited == nodes.len()
        }

        fn domain(&self) -> BTreeSet<u32> {
            self.0.iter().map(|&(a, _)| a).collect()
        }

        fn range(&self) -> BTreeSet<u32> {
            self.0.iter().map(|&(_, b)| b).collect()
        }
    }

    fn random_pairs(rng: &mut Rng, max_node: u32, max_edges: u64) -> PairRel {
        let edges = rng.below(max_edges + 1);
        PairRel(
            (0..edges)
                .map(|_| {
                    (
                        rng.below(u64::from(max_node)) as u32,
                        rng.below(u64::from(max_node)) as u32,
                    )
                })
                .collect(),
        )
    }

    fn set_of(ids: &BTreeSet<u32>) -> EventSet {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    const CASES: usize = 300;

    /// Mixes tiny graphs with multi-word ones so the stride-growth paths
    /// and the chunked-kernel widths are exercised, not just the one-word
    /// fast path: 64 nodes is exactly one word, 192 and 320 straddle the
    /// kernel chunk boundary (strides 4 and 8 at caps 256 and 512). Runs
    /// under both feature settings in CI, so scalar and chunked kernels are
    /// each pinned to the pair-set oracle.
    fn for_each_pair(seed: u64, mut check: impl FnMut(PairRel, PairRel)) {
        let mut rng = Rng::seed_from_u64(seed);
        for case in 0..CASES {
            let (max_node, max_edges) = match case % 6 {
                0 => (9, 24),
                1 => (64, 32),
                2 => (192, 48),
                3 => (320, 64),
                _ => (70, 24),
            };
            let r = random_pairs(&mut rng, max_node, max_edges);
            let s = random_pairs(&mut rng, max_node, max_edges);
            check(r, s);
        }
    }

    #[test]
    fn union_inter_diff_match_oracle() {
        for_each_pair(11, |r, s| {
            let (br, bs) = (r.to_bitset(), s.to_bitset());
            assert_eq!(PairRel::from_bitset(&br.union(&bs)), r.union(&s));
            assert_eq!(PairRel::from_bitset(&br.inter(&bs)), r.inter(&s));
            assert_eq!(PairRel::from_bitset(&br.diff(&bs)), r.diff(&s));
        });
    }

    #[test]
    fn seq_matches_oracle() {
        for_each_pair(12, |r, s| {
            let (br, bs) = (r.to_bitset(), s.to_bitset());
            assert_eq!(PairRel::from_bitset(&br.seq(&bs)), r.seq(&s));
        });
    }

    #[test]
    fn inverse_matches_oracle() {
        for_each_pair(13, |r, _| {
            assert_eq!(PairRel::from_bitset(&r.to_bitset().inverse()), r.inverse());
        });
    }

    #[test]
    fn closures_match_oracle() {
        for_each_pair(14, |r, _| {
            let br = r.to_bitset();
            assert_eq!(
                PairRel::from_bitset(&br.transitive_closure()),
                r.transitive_closure()
            );
            // r* = r+ ∪ id over the universe of touched nodes.
            let nodes: BTreeSet<u32> = r.domain().union(&r.range()).copied().collect();
            let universe = set_of(&nodes);
            let rstar = br.reflexive_transitive_closure(&universe);
            let mut expect = r.transitive_closure();
            for &n in &nodes {
                expect.0.insert((n, n));
            }
            assert_eq!(PairRel::from_bitset(&rstar), expect);
            // r? = r ∪ id.
            let ropt = br.optional(&universe);
            let mut expect = r.clone();
            for &n in &nodes {
                expect.0.insert((n, n));
            }
            assert_eq!(PairRel::from_bitset(&ropt), expect);
        });
    }

    #[test]
    fn acyclic_and_irreflexive_match_oracle() {
        for_each_pair(15, |r, s| {
            let (br, bs) = (r.to_bitset(), s.to_bitset());
            assert_eq!(br.is_acyclic(), r.is_acyclic(), "{br}");
            assert_eq!(br.is_irreflexive(), r.is_irreflexive(), "{br}");
            assert_eq!(
                Relation::union_is_acyclic(&[&br, &bs]),
                r.union(&s).is_acyclic(),
                "{br} ∪ {bs}"
            );
        });
    }

    #[test]
    fn edge_diff_matches_oracle() {
        for_each_pair(21, |r, s| {
            let (br, bs) = (r.to_bitset(), s.to_bitset());
            let got: Vec<(u32, u32)> = br.edge_diff(&bs).iter().map(|&(a, b)| (a.0, b.0)).collect();
            let expect: Vec<(u32, u32)> = r.diff(&s).0.into_iter().collect();
            assert_eq!(got, expect);
        });
    }

    #[test]
    fn domain_range_restrict_match_oracle() {
        for_each_pair(16, |r, s| {
            let br = r.to_bitset();
            assert_eq!(br.domain(), set_of(&r.domain()));
            assert_eq!(br.range(), set_of(&r.range()));
            let filter = set_of(&s.domain());
            let expect_dom =
                PairRel(r.0.iter().filter(|(a, _)| s.domain().contains(a)).copied().collect());
            let expect_rng =
                PairRel(r.0.iter().filter(|(_, b)| s.domain().contains(b)).copied().collect());
            assert_eq!(PairRel::from_bitset(&br.restrict_domain(&filter)), expect_dom);
            assert_eq!(PairRel::from_bitset(&br.restrict_range(&filter)), expect_rng);
        });
    }

    #[test]
    fn display_and_iter_match_oracle_order() {
        for_each_pair(17, |r, _| {
            let br = r.to_bitset();
            let edges: Vec<(u32, u32)> = br.iter().map(|(a, b)| (a.0, b.0)).collect();
            let expect: Vec<(u32, u32)> = r.0.iter().copied().collect();
            assert_eq!(edges, expect, "iteration must stay sorted");
            let shown = format!("{br}");
            let expect_shown = format!(
                "{{{}}}",
                r.0.iter()
                    .map(|(a, b)| format!("e{a}->e{b}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            assert_eq!(shown, expect_shown);
        });
    }

    #[test]
    fn insert_remove_sequences_match_oracle() {
        let mut rng = Rng::seed_from_u64(18);
        for _ in 0..100 {
            let mut oracle = PairRel::default();
            let mut bits = Relation::new();
            for _ in 0..60 {
                let a = rng.below(70) as u32;
                let b = rng.below(70) as u32;
                if rng.below(4) == 0 {
                    assert_eq!(
                        bits.remove(EventId(a), EventId(b)),
                        oracle.0.remove(&(a, b))
                    );
                } else {
                    assert_eq!(
                        bits.insert(EventId(a), EventId(b)),
                        oracle.0.insert((a, b))
                    );
                }
                assert_eq!(bits.len(), oracle.0.len());
            }
            assert_eq!(PairRel::from_bitset(&bits), oracle);
        }
    }

    #[test]
    fn eventset_ops_match_oracle() {
        let mut rng = Rng::seed_from_u64(19);
        for _ in 0..200 {
            let a: BTreeSet<u32> = (0..rng.below(20)).map(|_| rng.below(80) as u32).collect();
            let b: BTreeSet<u32> = (0..rng.below(20)).map(|_| rng.below(80) as u32).collect();
            let (sa, sb) = (set_of(&a), set_of(&b));
            let check = |s: &EventSet, o: BTreeSet<u32>| {
                let got: BTreeSet<u32> = s.iter().map(|e| e.0).collect();
                assert_eq!(got, o);
                assert_eq!(s.len(), o.len());
            };
            check(&sa.union(&sb), a.union(&b).copied().collect());
            check(&sa.inter(&sb), a.intersection(&b).copied().collect());
            check(&sa.diff(&sb), a.difference(&b).copied().collect());
            // identity and cross against first-principles pair sets.
            let id = PairRel(a.iter().map(|&x| (x, x)).collect());
            assert_eq!(PairRel::from_bitset(&sa.identity()), id);
            let mut cross = BTreeSet::new();
            for &x in &a {
                for &y in &b {
                    cross.insert((x, y));
                }
            }
            assert_eq!(PairRel::from_bitset(&sa.cross(&sb)), PairRel(cross));
        }
    }

    #[test]
    fn total_order_matches_definition() {
        let mut rng = Rng::seed_from_u64(20);
        for _ in 0..100 {
            // Disjoint ascending chains, like per-thread po.
            let mut next = 0u32;
            let mut chains: Vec<Vec<EventId>> = Vec::new();
            for _ in 0..rng.below(4) {
                let len = rng.below(6) as usize;
                chains.push((0..len).map(|_| {
                    let id = next;
                    next += 1 + rng.below(3) as u32;
                    EventId(id)
                }).collect());
            }
            let got = Relation::total_order(chains.iter().map(Vec::as_slice));
            let mut expect = PairRel::default();
            for c in &chains {
                for i in 0..c.len() {
                    for j in (i + 1)..c.len() {
                        expect.0.insert((c[i].0, c[j].0));
                    }
                }
            }
            assert_eq!(PairRel::from_bitset(&got), expect);
        }
    }
}
