//! Relational algebra over events.
//!
//! Memory models are predicates over *relations on events* (paper Def. II.1).
//! This module provides the finite relation type the enumerator builds and
//! the mini-Cat evaluator computes with: union, intersection, difference,
//! composition, inverses, closures, and the acyclicity/irreflexivity checks
//! models are made of.
//!
//! Events in one candidate execution are dense `EventId`s, so a relation is
//! a sorted set of id pairs. Sizes are litmus-scale (tens of events), which
//! keeps the straightforward set representation both simple and fast enough;
//! the super-linear cost of closure computation on larger event graphs is
//! exactly the state-explosion behaviour §IV-E of the paper describes.

use std::collections::BTreeSet;
use std::fmt;
use telechat_common::EventId;

/// A set of events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSet(BTreeSet<EventId>);

impl EventSet {
    /// The empty set.
    pub fn new() -> EventSet {
        EventSet(BTreeSet::new())
    }

    /// Inserts an event.
    pub fn insert(&mut self, e: EventId) -> bool {
        self.0.insert(e)
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.0.contains(&e)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates events in id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.0.iter().copied()
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.union(&other.0).copied().collect())
    }

    /// Set intersection.
    #[must_use]
    pub fn inter(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.intersection(&other.0).copied().collect())
    }

    /// Set difference.
    #[must_use]
    pub fn diff(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.difference(&other.0).copied().collect())
    }

    /// The identity relation on this set (`[S]` in Cat).
    #[must_use]
    pub fn identity(&self) -> Relation {
        Relation(self.0.iter().map(|&e| (e, e)).collect())
    }

    /// Cartesian product `self × other` (`S * T` in Cat).
    #[must_use]
    pub fn cross(&self, other: &EventSet) -> Relation {
        let mut r = BTreeSet::new();
        for &a in &self.0 {
            for &b in &other.0 {
                r.insert((a, b));
            }
        }
        Relation(r)
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        EventSet(iter.into_iter().collect())
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A binary relation over events: a sorted set of `(from, to)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation(BTreeSet<(EventId, EventId)>);

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation(BTreeSet::new())
    }

    /// Inserts an edge.
    pub fn insert(&mut self, from: EventId, to: EventId) -> bool {
        self.0.insert((from, to))
    }

    /// Removes an edge (the enumeration engine's backtracking undo).
    pub fn remove(&mut self, from: EventId, to: EventId) -> bool {
        self.0.remove(&(from, to))
    }

    /// The strict total order over each chain, as one relation: every pair
    /// `(c[i], c[j])` with `i < j`, for every chain `c`.
    ///
    /// This is the transitive closure of the chains' successor edges,
    /// built in one pass: the pair list is generated already sorted
    /// (chains are ascending, ids across chains disjoint and ascending)
    /// and bulk-collected, instead of `n²/2` interleaved point insertions.
    /// The enumerator uses it for transitive `po` (one chain per thread)
    /// and per-location `co` prefixes.
    #[must_use]
    pub fn total_order<'a, I>(chains: I) -> Relation
    where
        I: IntoIterator<Item = &'a [EventId]>,
    {
        let mut pairs = Vec::new();
        for chain in chains {
            pairs.reserve(chain.len().saturating_sub(1) * chain.len() / 2);
            for i in 0..chain.len() {
                for j in (i + 1)..chain.len() {
                    pairs.push((chain[i], chain[j]));
                }
            }
        }
        pairs.sort_unstable();
        Relation(pairs.into_iter().collect())
    }

    /// Edge membership.
    pub fn contains(&self, from: EventId, to: EventId) -> bool {
        self.0.contains(&(from, to))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the relation has no edges (`empty r` in Cat).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates edges in order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.0.iter().copied()
    }

    /// Union (`r | s`).
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        Relation(self.0.union(&other.0).copied().collect())
    }

    /// Intersection (`r & s`).
    #[must_use]
    pub fn inter(&self, other: &Relation) -> Relation {
        Relation(self.0.intersection(&other.0).copied().collect())
    }

    /// Difference (`r \ s`).
    #[must_use]
    pub fn diff(&self, other: &Relation) -> Relation {
        Relation(self.0.difference(&other.0).copied().collect())
    }

    /// Relational composition (`r ; s`): `{(a,c) | ∃b. r(a,b) ∧ s(b,c)}`.
    #[must_use]
    pub fn seq(&self, other: &Relation) -> Relation {
        let mut out = BTreeSet::new();
        for &(a, b) in &self.0 {
            // Iterate other edges starting at b.
            for &(b2, c) in other.0.range((b, EventId(0))..=(b, EventId(u32::MAX))) {
                debug_assert_eq!(b, b2);
                out.insert((a, c));
            }
        }
        Relation(out)
    }

    /// Inverse (`r^-1`).
    #[must_use]
    pub fn inverse(&self) -> Relation {
        Relation(self.0.iter().map(|&(a, b)| (b, a)).collect())
    }

    /// Transitive closure (`r+`).
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut closure = self.clone();
        loop {
            let step = closure.seq(self);
            let merged = closure.union(&step);
            if merged.len() == closure.len() {
                return closure;
            }
            closure = merged;
        }
    }

    /// Reflexive-transitive closure over a universe of events (`r*`).
    ///
    /// Cat's `r*` is reflexive over *all* events of the execution, so the
    /// universe must be supplied.
    #[must_use]
    pub fn reflexive_transitive_closure(&self, universe: &EventSet) -> Relation {
        self.transitive_closure().union(&universe.identity())
    }

    /// Reflexive closure over a universe (`r?`).
    #[must_use]
    pub fn optional(&self, universe: &EventSet) -> Relation {
        self.union(&universe.identity())
    }

    /// The set of edge sources (`domain(r)`).
    pub fn domain(&self) -> EventSet {
        self.0.iter().map(|&(a, _)| a).collect()
    }

    /// The set of edge targets (`range(r)`).
    pub fn range(&self) -> EventSet {
        self.0.iter().map(|&(_, b)| b).collect()
    }

    /// Restricts edge sources to `s` (`[s];r`).
    #[must_use]
    pub fn restrict_domain(&self, s: &EventSet) -> Relation {
        Relation(
            self.0
                .iter()
                .filter(|(a, _)| s.contains(*a))
                .copied()
                .collect(),
        )
    }

    /// Restricts edge targets to `s` (`r;[s]`).
    #[must_use]
    pub fn restrict_range(&self, s: &EventSet) -> Relation {
        Relation(
            self.0
                .iter()
                .filter(|(_, b)| s.contains(*b))
                .copied()
                .collect(),
        )
    }

    /// True if the relation has no edge `(e, e)` (`irreflexive r` in Cat).
    pub fn is_irreflexive(&self) -> bool {
        self.0.iter().all(|(a, b)| a != b)
    }

    /// True if the *union* of `rels` is acyclic, without materialising the
    /// union — the enumeration engine's partial-candidate fast path runs
    /// this on every DFS node, so the allocation-free form matters.
    pub fn union_is_acyclic(rels: &[&Relation]) -> bool {
        use std::collections::BTreeMap;
        let mut indegree: BTreeMap<EventId, usize> = BTreeMap::new();
        for r in rels {
            for &(a, b) in &r.0 {
                indegree.entry(a).or_insert(0);
                *indegree.entry(b).or_insert(0) += 1;
            }
        }
        let mut queue: Vec<EventId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let total = indegree.len();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            for r in rels {
                for &(a, b) in r.0.range((n, EventId(0))..=(n, EventId(u32::MAX))) {
                    debug_assert_eq!(a, n);
                    let d = indegree.get_mut(&b).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        visited == total
    }

    /// True if the relation is acyclic (`acyclic r` in Cat): its transitive
    /// closure is irreflexive.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over the edge set — cheaper than computing the
        // full closure just to test reflexivity.
        let nodes: BTreeSet<EventId> = self
            .0
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        let mut indegree: std::collections::BTreeMap<EventId, usize> =
            nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, b) in &self.0 {
            *indegree.get_mut(&b).expect("node present") += 1;
        }
        let mut queue: Vec<EventId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &(a, b) in self.0.range((n, EventId(0))..=(n, EventId(u32::MAX))) {
                debug_assert_eq!(a, n);
                let d = indegree.get_mut(&b).expect("node present");
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
        visited == nodes.len()
    }

    /// A topological order of the nodes if the relation is acyclic.
    pub fn topological_order(&self) -> Option<Vec<EventId>> {
        if !self.is_acyclic() {
            return None;
        }
        let nodes: BTreeSet<EventId> = self.0.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut indegree: std::collections::BTreeMap<EventId, usize> =
            nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, b) in &self.0 {
            *indegree.get_mut(&b).expect("node") += 1;
        }
        let mut queue: std::collections::BTreeSet<EventId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(&n) = queue.iter().next() {
            queue.remove(&n);
            order.push(n);
            for &(_, b) in self.0.range((n, EventId(0))..=(n, EventId(u32::MAX))) {
                let d = indegree.get_mut(&b).expect("node");
                *d -= 1;
                if *d == 0 {
                    queue.insert(b);
                }
            }
        }
        Some(order)
    }
}

impl FromIterator<(EventId, EventId)> for Relation {
    fn from_iter<I: IntoIterator<Item = (EventId, EventId)>>(iter: I) -> Self {
        Relation(iter.into_iter().collect())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}->{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> Relation {
        pairs
            .iter()
            .map(|&(a, b)| (EventId(a), EventId(b)))
            .collect()
    }

    fn set(ids: &[u32]) -> EventSet {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn seq_composes() {
        let r = rel(&[(0, 1), (1, 2)]);
        let s = rel(&[(1, 5), (2, 6)]);
        assert_eq!(r.seq(&s), rel(&[(0, 5), (1, 6)]));
    }

    #[test]
    fn transitive_closure_chains() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(EventId(0), EventId(3)));
        assert_eq!(tc.len(), 6);
    }

    #[test]
    fn acyclicity() {
        assert!(rel(&[(0, 1), (1, 2)]).is_acyclic());
        assert!(!rel(&[(0, 1), (1, 0)]).is_acyclic());
        assert!(!rel(&[(0, 0)]).is_acyclic());
        assert!(Relation::new().is_acyclic());
    }

    #[test]
    fn irreflexivity() {
        assert!(rel(&[(0, 1)]).is_irreflexive());
        assert!(!rel(&[(0, 1), (2, 2)]).is_irreflexive());
    }

    #[test]
    fn identity_and_cross() {
        let s = set(&[1, 2]);
        assert_eq!(s.identity(), rel(&[(1, 1), (2, 2)]));
        assert_eq!(
            s.cross(&set(&[7])),
            rel(&[(1, 7), (2, 7)])
        );
    }

    #[test]
    fn domain_range_restrict() {
        let r = rel(&[(0, 1), (2, 3)]);
        assert_eq!(r.domain(), set(&[0, 2]));
        assert_eq!(r.range(), set(&[1, 3]));
        assert_eq!(r.restrict_domain(&set(&[0])), rel(&[(0, 1)]));
        assert_eq!(r.restrict_range(&set(&[3])), rel(&[(2, 3)]));
    }

    #[test]
    fn topological_order_respects_edges() {
        let r = rel(&[(2, 1), (1, 0)]);
        let order = r.topological_order().unwrap();
        let pos = |e: u32| order.iter().position(|&x| x == EventId(e)).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert_eq!(rel(&[(0, 1), (1, 0)]).topological_order(), None);
    }

    #[test]
    fn optional_is_reflexive_over_universe() {
        let r = rel(&[(0, 1)]);
        let u = set(&[0, 1, 2]);
        let opt = r.optional(&u);
        assert!(opt.contains(EventId(2), EventId(2)));
        assert!(opt.contains(EventId(0), EventId(1)));
        assert_eq!(opt.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic property tests over pseudo-random relations.
    //!
    //! The build environment vendors no registry crates, so instead of
    //! `proptest` these run each algebraic law over a fixed stream of
    //! relations generated with the workspace-shared deterministic
    //! [`XorShiftRng`]. The stream is seeded per property, so failures
    //! are reproducible by construction.

    use super::*;
    use telechat_common::XorShiftRng as Rng;

    const CASES: usize = 200;

    fn random_relation(rng: &mut Rng, max_node: u32, max_edges: u64) -> Relation {
        let edges = rng.below(max_edges + 1);
        (0..edges)
            .map(|_| {
                (
                    EventId(rng.below(u64::from(max_node)) as u32),
                    EventId(rng.below(u64::from(max_node)) as u32),
                )
            })
            .collect()
    }

    fn for_each_relation(seed: u64, mut check: impl FnMut(Relation)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..CASES {
            check(random_relation(&mut rng, 8, 20));
        }
    }

    fn for_each_triple(seed: u64, mut check: impl FnMut(Relation, Relation, Relation)) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..CASES {
            let r = random_relation(&mut rng, 6, 12);
            let s = random_relation(&mut rng, 6, 12);
            let t = random_relation(&mut rng, 6, 12);
            check(r, s, t);
        }
    }

    #[test]
    fn closure_is_idempotent() {
        for_each_relation(1, |r| {
            let c1 = r.transitive_closure();
            let c2 = c1.transitive_closure();
            assert_eq!(c1, c2, "relation {r}");
        });
    }

    #[test]
    fn closure_contains_relation() {
        for_each_relation(2, |r| {
            let c = r.transitive_closure();
            assert!(r.iter().all(|(a, b)| c.contains(a, b)), "relation {r}");
        });
    }

    #[test]
    fn inverse_is_involutive() {
        for_each_relation(3, |r| {
            assert_eq!(r.inverse().inverse(), r, "relation {r}");
        });
    }

    #[test]
    fn seq_associative() {
        for_each_triple(4, |r, s, t| {
            assert_eq!(r.seq(&s).seq(&t), r.seq(&s.seq(&t)));
        });
    }

    #[test]
    fn union_distributes_over_seq() {
        for_each_triple(5, |r, s, t| {
            assert_eq!(r.union(&s).seq(&t), r.seq(&t).union(&s.seq(&t)));
        });
    }

    #[test]
    fn acyclic_iff_topological_order_exists() {
        for_each_relation(6, |r| {
            assert_eq!(r.is_acyclic(), r.topological_order().is_some(), "{r}");
        });
    }

    #[test]
    fn topological_order_sound() {
        for_each_relation(7, |r| {
            if let Some(order) = r.topological_order() {
                let pos: std::collections::BTreeMap<_, _> =
                    order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
                for (a, b) in r.iter() {
                    assert!(pos[&a] < pos[&b], "edge {a}->{b} violates order of {r}");
                }
            }
        });
    }

    #[test]
    fn acyclic_relation_closure_is_irreflexive() {
        for_each_relation(8, |r| {
            assert_eq!(r.is_acyclic(), r.transitive_closure().is_irreflexive(), "{r}");
        });
    }

    #[test]
    fn inverse_of_seq_flips() {
        for_each_triple(9, |r, s, _| {
            assert_eq!(r.seq(&s).inverse(), s.inverse().seq(&r.inverse()));
        });
    }
}
