//! Relational algebra over events.
//!
//! Memory models are predicates over *relations on events* (paper Def. II.1).
//! This module provides the finite relation type the enumerator builds and
//! the mini-Cat evaluator computes with: union, intersection, difference,
//! composition, inverses, closures, and the acyclicity/irreflexivity checks
//! models are made of.
//!
//! Events in one candidate execution are dense `EventId`s, so a relation is
//! a sorted set of id pairs. Sizes are litmus-scale (tens of events), which
//! keeps the straightforward set representation both simple and fast enough;
//! the super-linear cost of closure computation on larger event graphs is
//! exactly the state-explosion behaviour §IV-E of the paper describes.

use std::collections::BTreeSet;
use std::fmt;
use telechat_common::EventId;

/// A set of events.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSet(BTreeSet<EventId>);

impl EventSet {
    /// The empty set.
    pub fn new() -> EventSet {
        EventSet(BTreeSet::new())
    }

    /// Inserts an event.
    pub fn insert(&mut self, e: EventId) -> bool {
        self.0.insert(e)
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.0.contains(&e)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates events in id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.0.iter().copied()
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.union(&other.0).copied().collect())
    }

    /// Set intersection.
    #[must_use]
    pub fn inter(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.intersection(&other.0).copied().collect())
    }

    /// Set difference.
    #[must_use]
    pub fn diff(&self, other: &EventSet) -> EventSet {
        EventSet(self.0.difference(&other.0).copied().collect())
    }

    /// The identity relation on this set (`[S]` in Cat).
    #[must_use]
    pub fn identity(&self) -> Relation {
        Relation(self.0.iter().map(|&e| (e, e)).collect())
    }

    /// Cartesian product `self × other` (`S * T` in Cat).
    #[must_use]
    pub fn cross(&self, other: &EventSet) -> Relation {
        let mut r = BTreeSet::new();
        for &a in &self.0 {
            for &b in &other.0 {
                r.insert((a, b));
            }
        }
        Relation(r)
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        EventSet(iter.into_iter().collect())
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A binary relation over events: a sorted set of `(from, to)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation(BTreeSet<(EventId, EventId)>);

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation(BTreeSet::new())
    }

    /// Inserts an edge.
    pub fn insert(&mut self, from: EventId, to: EventId) -> bool {
        self.0.insert((from, to))
    }

    /// Edge membership.
    pub fn contains(&self, from: EventId, to: EventId) -> bool {
        self.0.contains(&(from, to))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the relation has no edges (`empty r` in Cat).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates edges in order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.0.iter().copied()
    }

    /// Union (`r | s`).
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        Relation(self.0.union(&other.0).copied().collect())
    }

    /// Intersection (`r & s`).
    #[must_use]
    pub fn inter(&self, other: &Relation) -> Relation {
        Relation(self.0.intersection(&other.0).copied().collect())
    }

    /// Difference (`r \ s`).
    #[must_use]
    pub fn diff(&self, other: &Relation) -> Relation {
        Relation(self.0.difference(&other.0).copied().collect())
    }

    /// Relational composition (`r ; s`): `{(a,c) | ∃b. r(a,b) ∧ s(b,c)}`.
    #[must_use]
    pub fn seq(&self, other: &Relation) -> Relation {
        let mut out = BTreeSet::new();
        for &(a, b) in &self.0 {
            // Iterate other edges starting at b.
            for &(b2, c) in other.0.range((b, EventId(0))..=(b, EventId(u32::MAX))) {
                debug_assert_eq!(b, b2);
                out.insert((a, c));
            }
        }
        Relation(out)
    }

    /// Inverse (`r^-1`).
    #[must_use]
    pub fn inverse(&self) -> Relation {
        Relation(self.0.iter().map(|&(a, b)| (b, a)).collect())
    }

    /// Transitive closure (`r+`).
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut closure = self.clone();
        loop {
            let step = closure.seq(self);
            let merged = closure.union(&step);
            if merged.len() == closure.len() {
                return closure;
            }
            closure = merged;
        }
    }

    /// Reflexive-transitive closure over a universe of events (`r*`).
    ///
    /// Cat's `r*` is reflexive over *all* events of the execution, so the
    /// universe must be supplied.
    #[must_use]
    pub fn reflexive_transitive_closure(&self, universe: &EventSet) -> Relation {
        self.transitive_closure().union(&universe.identity())
    }

    /// Reflexive closure over a universe (`r?`).
    #[must_use]
    pub fn optional(&self, universe: &EventSet) -> Relation {
        self.union(&universe.identity())
    }

    /// The set of edge sources (`domain(r)`).
    pub fn domain(&self) -> EventSet {
        self.0.iter().map(|&(a, _)| a).collect()
    }

    /// The set of edge targets (`range(r)`).
    pub fn range(&self) -> EventSet {
        self.0.iter().map(|&(_, b)| b).collect()
    }

    /// Restricts edge sources to `s` (`[s];r`).
    #[must_use]
    pub fn restrict_domain(&self, s: &EventSet) -> Relation {
        Relation(
            self.0
                .iter()
                .filter(|(a, _)| s.contains(*a))
                .copied()
                .collect(),
        )
    }

    /// Restricts edge targets to `s` (`r;[s]`).
    #[must_use]
    pub fn restrict_range(&self, s: &EventSet) -> Relation {
        Relation(
            self.0
                .iter()
                .filter(|(_, b)| s.contains(*b))
                .copied()
                .collect(),
        )
    }

    /// True if the relation has no edge `(e, e)` (`irreflexive r` in Cat).
    pub fn is_irreflexive(&self) -> bool {
        self.0.iter().all(|(a, b)| a != b)
    }

    /// True if the relation is acyclic (`acyclic r` in Cat): its transitive
    /// closure is irreflexive.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over the edge set — cheaper than computing the
        // full closure just to test reflexivity.
        let nodes: BTreeSet<EventId> = self
            .0
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        let mut indegree: std::collections::BTreeMap<EventId, usize> =
            nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, b) in &self.0 {
            *indegree.get_mut(&b).expect("node present") += 1;
        }
        let mut queue: Vec<EventId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &(a, b) in self.0.range((n, EventId(0))..=(n, EventId(u32::MAX))) {
                debug_assert_eq!(a, n);
                let d = indegree.get_mut(&b).expect("node present");
                *d -= 1;
                if *d == 0 {
                    queue.push(b);
                }
            }
        }
        visited == nodes.len()
    }

    /// A topological order of the nodes if the relation is acyclic.
    pub fn topological_order(&self) -> Option<Vec<EventId>> {
        if !self.is_acyclic() {
            return None;
        }
        let nodes: BTreeSet<EventId> = self.0.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut indegree: std::collections::BTreeMap<EventId, usize> =
            nodes.iter().map(|&n| (n, 0)).collect();
        for &(_, b) in &self.0 {
            *indegree.get_mut(&b).expect("node") += 1;
        }
        let mut queue: std::collections::BTreeSet<EventId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(&n) = queue.iter().next() {
            queue.remove(&n);
            order.push(n);
            for &(_, b) in self.0.range((n, EventId(0))..=(n, EventId(u32::MAX))) {
                let d = indegree.get_mut(&b).expect("node");
                *d -= 1;
                if *d == 0 {
                    queue.insert(b);
                }
            }
        }
        Some(order)
    }
}

impl FromIterator<(EventId, EventId)> for Relation {
    fn from_iter<I: IntoIterator<Item = (EventId, EventId)>>(iter: I) -> Self {
        Relation(iter.into_iter().collect())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}->{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> Relation {
        pairs
            .iter()
            .map(|&(a, b)| (EventId(a), EventId(b)))
            .collect()
    }

    fn set(ids: &[u32]) -> EventSet {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn seq_composes() {
        let r = rel(&[(0, 1), (1, 2)]);
        let s = rel(&[(1, 5), (2, 6)]);
        assert_eq!(r.seq(&s), rel(&[(0, 5), (1, 6)]));
    }

    #[test]
    fn transitive_closure_chains() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(EventId(0), EventId(3)));
        assert_eq!(tc.len(), 6);
    }

    #[test]
    fn acyclicity() {
        assert!(rel(&[(0, 1), (1, 2)]).is_acyclic());
        assert!(!rel(&[(0, 1), (1, 0)]).is_acyclic());
        assert!(!rel(&[(0, 0)]).is_acyclic());
        assert!(Relation::new().is_acyclic());
    }

    #[test]
    fn irreflexivity() {
        assert!(rel(&[(0, 1)]).is_irreflexive());
        assert!(!rel(&[(0, 1), (2, 2)]).is_irreflexive());
    }

    #[test]
    fn identity_and_cross() {
        let s = set(&[1, 2]);
        assert_eq!(s.identity(), rel(&[(1, 1), (2, 2)]));
        assert_eq!(
            s.cross(&set(&[7])),
            rel(&[(1, 7), (2, 7)])
        );
    }

    #[test]
    fn domain_range_restrict() {
        let r = rel(&[(0, 1), (2, 3)]);
        assert_eq!(r.domain(), set(&[0, 2]));
        assert_eq!(r.range(), set(&[1, 3]));
        assert_eq!(r.restrict_domain(&set(&[0])), rel(&[(0, 1)]));
        assert_eq!(r.restrict_range(&set(&[3])), rel(&[(2, 3)]));
    }

    #[test]
    fn topological_order_respects_edges() {
        let r = rel(&[(2, 1), (1, 0)]);
        let order = r.topological_order().unwrap();
        let pos = |e: u32| order.iter().position(|&x| x == EventId(e)).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert_eq!(rel(&[(0, 1), (1, 0)]).topological_order(), None);
    }

    #[test]
    fn optional_is_reflexive_over_universe() {
        let r = rel(&[(0, 1)]);
        let u = set(&[0, 1, 2]);
        let opt = r.optional(&u);
        assert!(opt.contains(EventId(2), EventId(2)));
        assert!(opt.contains(EventId(0), EventId(1)));
        assert_eq!(opt.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_relation(max_node: u32, max_edges: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::btree_set((0..max_node, 0..max_node), 0..max_edges).prop_map(|s| {
            s.into_iter()
                .map(|(a, b)| (EventId(a), EventId(b)))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn closure_is_idempotent(r in arb_relation(8, 20)) {
            let c1 = r.transitive_closure();
            let c2 = c1.transitive_closure();
            prop_assert_eq!(c1, c2);
        }

        #[test]
        fn closure_contains_relation(r in arb_relation(8, 20)) {
            let c = r.transitive_closure();
            prop_assert!(r.iter().all(|(a, b)| c.contains(a, b)));
        }

        #[test]
        fn inverse_is_involutive(r in arb_relation(8, 20)) {
            prop_assert_eq!(r.inverse().inverse(), r);
        }

        #[test]
        fn seq_associative(
            r in arb_relation(6, 12),
            s in arb_relation(6, 12),
            t in arb_relation(6, 12),
        ) {
            prop_assert_eq!(r.seq(&s).seq(&t), r.seq(&s.seq(&t)));
        }

        #[test]
        fn union_distributes_over_seq(
            r in arb_relation(6, 12),
            s in arb_relation(6, 12),
            t in arb_relation(6, 12),
        ) {
            prop_assert_eq!(
                r.union(&s).seq(&t),
                r.seq(&t).union(&s.seq(&t))
            );
        }

        #[test]
        fn acyclic_iff_topological_order_exists(r in arb_relation(8, 20)) {
            prop_assert_eq!(r.is_acyclic(), r.topological_order().is_some());
        }

        #[test]
        fn topological_order_sound(r in arb_relation(8, 20)) {
            if let Some(order) = r.topological_order() {
                let pos: std::collections::BTreeMap<_, _> =
                    order.iter().enumerate().map(|(i, &e)| (e, i)).collect();
                for (a, b) in r.iter() {
                    prop_assert!(pos[&a] < pos[&b], "edge {a}->{b} violates order");
                }
            }
        }

        #[test]
        fn acyclic_relation_closure_is_irreflexive(r in arb_relation(8, 20)) {
            prop_assert_eq!(r.is_acyclic(), r.transitive_closure().is_irreflexive());
        }

        #[test]
        fn inverse_of_seq_flips(r in arb_relation(6, 12), s in arb_relation(6, 12)) {
            prop_assert_eq!(r.seq(&s).inverse(), s.inverse().seq(&r.inverse()));
        }
    }
}
