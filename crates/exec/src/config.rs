//! Simulation configuration and results.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
use telechat_common::OutcomeSet;
use telechat_obs::Histogram;

/// Limits and switches for one simulation run.
///
/// The defaults mirror the paper's artefact: a 120-second timeout
/// (`TIMEOUT=120.0` in the Makefile), loop unroll factor 2, and exclusives
/// that always succeed (herd's `-speedcheck`-style fast path).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Backward-jump bound per label (loop unroll factor).
    pub unroll: usize,
    /// Fix-point rounds for the candidate-value pools.
    pub max_pool_iters: usize,
    /// Interpreter instruction-step budget (all threads, all forks).
    pub max_steps: u64,
    /// Candidate-execution budget (rf × co combinations examined).
    pub max_candidates: u64,
    /// Wall-clock limit for the whole simulation.
    pub timeout: Option<Duration>,
    /// Wall-clock deadline for one campaign *work item* (prepare, compile,
    /// extract and both simulation legs). Enforced by the campaign driver,
    /// not the enumerator: a work item that overruns — including one
    /// stalled *outside* the simulator's cooperative [`SimConfig::timeout`]
    /// checks — is abandoned and becomes a typed
    /// `Error::Deadline` cell while the rest of the campaign completes.
    /// `None` (the default) disables the watchdog. Excluded from the cache
    /// key (`sim_config_fingerprint`): like `threads`, it is an
    /// enforcement knob, not a semantic input — cached results are only
    /// ever recorded from runs that finished.
    pub deadline: Option<Duration>,
    /// Explore store-exclusive failure paths (off = exclusives always
    /// succeed, the common litmus assumption).
    pub excl_fail_paths: bool,
    /// Keep allowed executions (for rendering figures); bounded by
    /// `max_kept`.
    pub keep_executions: bool,
    /// Maximum executions kept when `keep_executions` is set.
    pub max_kept: usize,
    /// Worker threads for candidate enumeration (trace combinations are
    /// sharded across workers; outcome sets are merged deterministically,
    /// so results do not depend on this value). `0` is treated as `1`.
    ///
    /// Campaign-level parallelism composes with this: `run_campaign`
    /// forces single-threaded simulation when the campaign itself runs
    /// multiple workers, so the two levels never oversubscribe.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            unroll: 2,
            max_pool_iters: 4,
            max_steps: 4_000_000,
            max_candidates: 4_000_000,
            timeout: Some(Duration::from_secs(120)),
            deadline: None,
            excl_fail_paths: false,
            keep_executions: false,
            max_kept: 64,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// A configuration with a short timeout, for large campaigns.
    pub fn fast() -> SimConfig {
        SimConfig {
            timeout: Some(Duration::from_secs(5)),
            max_steps: 400_000,
            max_candidates: 200_000,
            ..SimConfig::default()
        }
    }

    /// Keeps allowed executions for rendering.
    #[must_use]
    pub fn keeping_executions(mut self) -> SimConfig {
        self.keep_executions = true;
        self
    }

    /// Sets the wall-clock timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> SimConfig {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the enumeration worker-thread count (`0` is treated as `1`).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads;
        self
    }

    /// Sets the campaign work-item wall-clock deadline (see
    /// [`SimConfig::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SimConfig {
        self.deadline = Some(deadline);
        self
    }

    /// A configuration using every available core for enumeration.
    #[must_use]
    pub fn parallel() -> SimConfig {
        SimConfig::default().with_threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

/// The result of simulating a litmus test under a model.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Outcomes of all allowed executions (paper Def. II.2).
    pub outcomes: OutcomeSet,
    /// Number of candidate executions examined.
    pub candidates: u64,
    /// Number of allowed executions.
    pub allowed: u64,
    /// Flag checks that fired on at least one allowed execution
    /// (e.g. `race`, `const-write`).
    pub flags: BTreeSet<String>,
    /// True if an allowed execution wrote to a `const` (read-only) location
    /// — a runtime crash in the compiled program (paper bug [36]).
    pub crashed: bool,
    /// Allowed executions, when [`SimConfig::keep_executions`] was set.
    pub executions: Vec<crate::event::Execution>,
    /// Full (non-incremental) acyclicity traversals run during this
    /// simulation, summed over all worker threads. Zero whenever every
    /// model session answered from incremental per-edge state — the
    /// pinned property for the bundled interpreted models, at every
    /// thread count and under intra-combo work stealing.
    pub full_traversals: u64,
    /// Candidate executions accounted for by pruned subtrees (forced-
    /// choice and free-choice cutoffs in the coherence DFS) rather than
    /// visited leaves. Charge sums, so byte-identical across thread
    /// counts and task-splitting mode: `candidates` = leaves + this.
    pub pruned_candidates: u64,
    /// DFS shard tasks executed when intra-combo work stealing split the
    /// search (0 in plain per-combo mode). Scheduling-dependent — how the
    /// search is carved up, never what it finds — and therefore excluded
    /// from the persist codec: replayed results report 0.
    pub steal_tasks: u64,
    /// Leaf verdict attribution: for every candidate the model forbade,
    /// the first-violated rule name (a `.cat` constraint, or the built-in
    /// session's axiom tag) → how many leaves it killed. Charge tallies
    /// over the visited-leaf set, so byte-identical across thread counts
    /// and work-stealing mode.
    pub rule_leaves: BTreeMap<String, u64>,
    /// Mid-DFS prune attribution: pruned-candidate *charge* blamed on the
    /// rule the incremental session reported as first-violated when the
    /// subtree was cut (empty for models that prune without naming a
    /// rule). Charge sums, hence thread-invariant; sums to at most
    /// [`SimResult::pruned_candidates`].
    pub rule_prunes: BTreeMap<String, u64>,
    /// Which of the four enumeration prune sites (rf/co × incremental
    /// check / periodic recheck) accounted each pruned charge.
    pub prune_sites: PruneSites,
    /// Per-combo DFS size distribution: one sample per rf-combo, the
    /// candidate charge (leaves + pruned) accounted inside it. Merged
    /// elementwise, so byte-identical across thread counts.
    pub combo_candidates: Histogram,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Pruned-candidate charge broken down by enumeration prune site: which
/// assignment layer (`rf` or `co`) cut the subtree, and whether the
/// incremental per-edge session said so immediately (`incremental`) or a
/// periodic full recheck caught it (`recheck`). Charge sums — the same
/// invariant as [`SimResult::pruned_candidates`] — so byte-identical
/// across thread counts and task-splitting mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneSites {
    /// Charge pruned at an rf assignment by the incremental session.
    pub rf_incremental: u64,
    /// Charge pruned at an rf assignment by a periodic full recheck.
    pub rf_recheck: u64,
    /// Charge pruned at a co assignment by the incremental session.
    pub co_incremental: u64,
    /// Charge pruned at a co assignment by a periodic full recheck.
    pub co_recheck: u64,
}

impl PruneSites {
    /// Folds `other` in (field-wise sum).
    pub fn merge(&mut self, other: &PruneSites) {
        self.rf_incremental += other.rf_incremental;
        self.rf_recheck += other.rf_recheck;
        self.co_incremental += other.co_incremental;
        self.co_recheck += other.co_recheck;
    }

    /// Total charge across all four sites.
    pub fn total(&self) -> u64 {
        self.rf_incremental + self.rf_recheck + self.co_incremental + self.co_recheck
    }

    /// `(site label, charge)` rows in fixed order, for metric sinks and
    /// codecs.
    pub fn rows(&self) -> [(&'static str, u64); 4] {
        [
            ("rf.incremental", self.rf_incremental),
            ("rf.recheck", self.rf_recheck),
            ("co.incremental", self.co_incremental),
            ("co.recheck", self.co_recheck),
        ]
    }
}

impl SimResult {
    /// True if any allowed execution fired the named flag.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_artefact() {
        let c = SimConfig::default();
        assert_eq!(c.unroll, 2);
        assert_eq!(c.timeout, Some(Duration::from_secs(120)));
        assert!(!c.excl_fail_paths);
    }

    #[test]
    fn builders() {
        let c = SimConfig::fast()
            .keeping_executions()
            .with_timeout(Duration::from_millis(10));
        assert!(c.keep_executions);
        assert_eq!(c.timeout, Some(Duration::from_millis(10)));
    }
}
