//! The consistency-model interface.
//!
//! The enumerator produces candidate executions; a [`ConsistencyModel`]
//! filters out the forbidden ones (paper §II-A: "a memory consistency model
//! filters out forbidden executions of a litmus test"). The real models live
//! in `telechat-cat` as mini-Cat programs; this crate only defines the
//! interface plus two built-in reference models used for testing and as the
//! strongest/weakest bounds.

use crate::event::Execution;

/// A model's judgement of one candidate execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The execution is allowed; `flags` carries any `flag` checks that
    /// fired (e.g. `race` for a C11 data race, `const-write` for a store to
    /// read-only memory).
    Allowed {
        /// Names of fired flag checks.
        flags: Vec<String>,
    },
    /// The execution is forbidden by the named rule.
    Forbidden {
        /// Name of the first violated check.
        rule: String,
    },
}

impl Verdict {
    /// Allowed with no flags.
    pub fn allowed() -> Verdict {
        Verdict::Allowed { flags: Vec::new() }
    }

    /// True if allowed (flags or not).
    pub fn is_allowed(&self) -> bool {
        matches!(self, Verdict::Allowed { .. })
    }
}

/// A model's judgement of a *partial* candidate (rf/co not yet complete).
///
/// Returned by [`ConsistencyModel::check_partial`], the enumeration
/// engine's fast-reject hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialVerdict {
    /// The partial candidate may still have allowed completions; keep
    /// enumerating below it.
    Undecided,
    /// *Every* completion of this partial candidate is forbidden; the
    /// engine prunes the whole subtree.
    Forbidden,
}

/// A memory consistency model: a predicate over candidate executions.
pub trait ConsistencyModel: Send + Sync {
    /// Model name (e.g. `rc11`, `aarch64`).
    fn name(&self) -> &str;

    /// Judges one candidate execution.
    fn check(&self, execution: &Execution) -> Verdict;

    /// Fast-reject hook for the incremental enumeration engine.
    ///
    /// `partial` is a candidate under construction: `po`, `rmw`, `addr`,
    /// `data` and `ctrl` are final, but `rf` covers only a prefix of the
    /// reads and `co` only a prefix of each location's coherence chain
    /// (always transitively closed so far). `partial.outcome` is
    /// meaningless at this point.
    ///
    /// # Contract
    ///
    /// Returning [`PartialVerdict::Forbidden`] asserts that [`check`]
    /// would return [`Verdict::Forbidden`] for **every** extension of
    /// `partial` — the base relations only *grow* along a branch, so any
    /// monotone violation (a cycle in a union of growing relations, a
    /// non-empty intersection of growing relations) is safe to report.
    /// Non-monotone conditions (anything involving complement or
    /// difference of a growing relation) must return `Undecided`.
    ///
    /// The default is a no-op, so models that only implement [`check`]
    /// (e.g. the `telechat-cat` interpreted models, whose programs may
    /// use non-monotone operators) work unchanged — they simply forgo
    /// pruning.
    ///
    /// [`check`]: ConsistencyModel::check
    fn check_partial(&self, _partial: &Execution) -> PartialVerdict {
        PartialVerdict::Undecided
    }

    /// Opens a per-combo checking session.
    ///
    /// `skeleton` is the combo's candidate with the *fixed* relations
    /// populated (events, `po`, `rmw`, `addr`, `data`, `ctrl`) and
    /// `rf`/`co` still empty. A model may precompute anything that is
    /// constant across every rf/co choice of the combo — derived
    /// relations like `loc`/`ext`/`int`, annotation sets, the event
    /// universe — and reuse it for each candidate, instead of rebuilding
    /// per candidate. The default session simply forwards to
    /// [`check`]/[`check_partial`].
    ///
    /// [`check`]: ConsistencyModel::check
    /// [`check_partial`]: ConsistencyModel::check_partial
    fn combo_checker<'a>(&'a self, _skeleton: &Execution) -> Box<dyn ComboChecker + 'a> {
        Box::new(ForwardingChecker(self))
    }
}

/// A per-combo checking session (see [`ConsistencyModel::combo_checker`]).
///
/// The enumeration engine creates one per trace combination and funnels
/// every full and partial candidate of that combo through it, so
/// implementations can hold combo-constant derived data.
pub trait ComboChecker: Send {
    /// Judges one complete candidate (same contract as
    /// [`ConsistencyModel::check`]).
    fn check(&self, execution: &Execution) -> Verdict;

    /// Judges one partial candidate (same contract as
    /// [`ConsistencyModel::check_partial`]).
    fn check_partial(&self, partial: &Execution) -> PartialVerdict;
}

/// The default session: no combo-constant state, plain forwarding.
struct ForwardingChecker<'a, M: ConsistencyModel + ?Sized>(&'a M);

impl<M: ConsistencyModel + ?Sized> ComboChecker for ForwardingChecker<'_, M> {
    fn check(&self, execution: &Execution) -> Verdict {
        self.0.check(execution)
    }

    fn check_partial(&self, partial: &Execution) -> PartialVerdict {
        self.0.check_partial(partial)
    }
}

/// The weakest model: every candidate execution is allowed. Useful as an
/// upper bound and in enumerator tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl ConsistencyModel for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn check(&self, _execution: &Execution) -> Verdict {
        Verdict::allowed()
    }
}

/// Lamport sequential consistency: `acyclic (po | rf | co | fr)` — the
/// strongest bundled model, used as a reference bound and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCstRef;

impl ConsistencyModel for SeqCstRef {
    fn name(&self) -> &str {
        "sc-ref"
    }

    fn check(&self, x: &Execution) -> Verdict {
        let com = x.po.union(&x.rf).union(&x.co).union(&x.fr());
        if com.is_acyclic() {
            Verdict::allowed()
        } else {
            Verdict::Forbidden {
                rule: "sc".into(),
            }
        }
    }

    /// A cycle in `po | rf | co | fr` can only persist as the relations
    /// grow, so partial cyclicity rejects the whole subtree.
    fn check_partial(&self, x: &Execution) -> PartialVerdict {
        let fr = x.fr();
        if crate::rel::Relation::union_is_acyclic(&[&x.po, &x.rf, &x.co, &fr]) {
            PartialVerdict::Undecided
        } else {
            PartialVerdict::Forbidden
        }
    }
}

/// SC-per-location only (coherence): `acyclic (po-loc | rf | co | fr)` plus
/// RMW atomicity. Allows every reordering across locations — close to the
/// weakest *plausible* hardware, handy for differential bounds in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceOnly;

impl ConsistencyModel for CoherenceOnly {
    fn name(&self) -> &str {
        "coherence"
    }

    fn check(&self, x: &Execution) -> Verdict {
        let com = x.po_loc().union(&x.rf).union(&x.co).union(&x.fr());
        if !com.is_acyclic() {
            return Verdict::Forbidden {
                rule: "coherence".into(),
            };
        }
        // Atomicity: no write intervenes between an RMW's read and write.
        let fre = x.fr().inter(&x.ext_rel());
        let coe = x.co.inter(&x.ext_rel());
        if !x.rmw.inter(&fre.seq(&coe)).is_empty() {
            return Verdict::Forbidden {
                rule: "atomicity".into(),
            };
        }
        Verdict::allowed()
    }

    /// Both axioms are monotone — a per-location cycle stays a cycle, a
    /// non-empty `rmw & (fre;coe)` stays non-empty — so either firing on
    /// a partial candidate rejects the subtree.
    fn check_partial(&self, x: &Execution) -> PartialVerdict {
        CoherenceChecker::from_skeleton(x).check_partial(x)
    }

    /// `po-loc` and `ext` are combo-constant; cache them per session
    /// instead of rebuilding per candidate.
    fn combo_checker<'a>(&'a self, skeleton: &Execution) -> Box<dyn ComboChecker + 'a> {
        Box::new(CoherenceChecker::from_skeleton(skeleton))
    }
}

/// [`CoherenceOnly`]'s combo session: the per-location program order and
/// the external relation do not depend on rf/co, so they are computed
/// once per combo.
struct CoherenceChecker {
    po_loc: crate::rel::Relation,
    ext: crate::rel::Relation,
}

impl CoherenceChecker {
    fn from_skeleton(skeleton: &Execution) -> CoherenceChecker {
        CoherenceChecker {
            po_loc: skeleton.po_loc(),
            ext: skeleton.ext_rel(),
        }
    }

    fn violates(&self, x: &Execution) -> Option<&'static str> {
        let fr = x.fr();
        if !crate::rel::Relation::union_is_acyclic(&[&self.po_loc, &x.rf, &x.co, &fr]) {
            return Some("coherence");
        }
        let fre = fr.inter(&self.ext);
        let coe = x.co.inter(&self.ext);
        if !x.rmw.inter(&fre.seq(&coe)).is_empty() {
            return Some("atomicity");
        }
        None
    }
}

impl ComboChecker for CoherenceChecker {
    fn check(&self, x: &Execution) -> Verdict {
        match self.violates(x) {
            Some(rule) => Verdict::Forbidden { rule: rule.into() },
            None => Verdict::allowed(),
        }
    }

    fn check_partial(&self, x: &Execution) -> PartialVerdict {
        if self.violates(x).is_some() {
            PartialVerdict::Forbidden
        } else {
            PartialVerdict::Undecided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, INIT_THREAD};
    use crate::rel::Relation;
    use telechat_common::{AnnotSet, EventId, Loc, Outcome, ThreadId, Val};

    fn sb_violation() -> Execution {
        // SB weak outcome: both reads see 0 — a (po|rf|co|fr) cycle.
        let ev = |id: u32, thread, po_index, kind, loc: &str, val: i64| Event {
            id: EventId(id),
            thread,
            po_index,
            kind,
            loc: Some(Loc::new(loc)),
            val: Some(Val::Int(val)),
            annot: AnnotSet::EMPTY,
        };
        let events = vec![
            ev(0, INIT_THREAD, 0, EventKind::Write, "x", 0),
            ev(1, INIT_THREAD, 1, EventKind::Write, "y", 0),
            ev(2, ThreadId(0), 0, EventKind::Write, "x", 1),
            ev(3, ThreadId(0), 1, EventKind::Read, "y", 0),
            ev(4, ThreadId(1), 0, EventKind::Write, "y", 1),
            ev(5, ThreadId(1), 1, EventKind::Read, "x", 0),
        ];
        let mut po = Relation::new();
        po.insert(EventId(2), EventId(3));
        po.insert(EventId(4), EventId(5));
        let mut rf = Relation::new();
        rf.insert(EventId(1), EventId(3));
        rf.insert(EventId(0), EventId(5));
        let mut co = Relation::new();
        co.insert(EventId(0), EventId(2));
        co.insert(EventId(1), EventId(4));
        Execution {
            events,
            po,
            rf,
            co,
            rmw: Relation::new(),
            addr: Relation::new(),
            data: Relation::new(),
            ctrl: Relation::new(),
            outcome: Outcome::new(),
        }
    }

    #[test]
    fn sc_forbids_store_buffering() {
        let x = sb_violation();
        assert!(!SeqCstRef.check(&x).is_allowed());
        assert!(AllowAll.check(&x).is_allowed());
        // Coherence alone allows SB (the cycle crosses locations).
        assert!(CoherenceOnly.check(&x).is_allowed());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::allowed().is_allowed());
        assert!(!Verdict::Forbidden { rule: "r".into() }.is_allowed());
    }
}
