//! The consistency-model interface.
//!
//! The enumerator produces candidate executions; a [`ConsistencyModel`]
//! filters out the forbidden ones (paper §II-A: "a memory consistency model
//! filters out forbidden executions of a litmus test"). The real models live
//! in `telechat-cat` as mini-Cat programs; this crate only defines the
//! interface plus two built-in reference models used for testing and as the
//! strongest/weakest bounds.

use crate::event::Execution;
use crate::incr::IncrementalOrder;
use crate::rel::Relation;
use telechat_common::EventId;

/// A model's judgement of one candidate execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The execution is allowed; `flags` carries any `flag` checks that
    /// fired (e.g. `race` for a C11 data race, `const-write` for a store to
    /// read-only memory).
    Allowed {
        /// Names of fired flag checks.
        flags: Vec<String>,
    },
    /// The execution is forbidden by the named rule.
    Forbidden {
        /// Name of the first violated check.
        rule: String,
    },
}

impl Verdict {
    /// Allowed with no flags.
    pub fn allowed() -> Verdict {
        Verdict::Allowed { flags: Vec::new() }
    }

    /// True if allowed (flags or not).
    pub fn is_allowed(&self) -> bool {
        matches!(self, Verdict::Allowed { .. })
    }
}

/// A model's judgement of a *partial* candidate (rf/co not yet complete).
///
/// Returned by [`ConsistencyModel::check_partial`], the enumeration
/// engine's fast-reject hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialVerdict {
    /// The partial candidate may still have allowed completions; keep
    /// enumerating below it.
    Undecided,
    /// *Every* completion of this partial candidate is forbidden; the
    /// engine prunes the whole subtree.
    Forbidden,
}

/// A memory consistency model: a predicate over candidate executions.
pub trait ConsistencyModel: Send + Sync {
    /// Model name (e.g. `rc11`, `aarch64`).
    fn name(&self) -> &str;

    /// Judges one candidate execution.
    fn check(&self, execution: &Execution) -> Verdict;

    /// Fast-reject hook for the incremental enumeration engine.
    ///
    /// `partial` is a candidate under construction: `po`, `rmw`, `addr`,
    /// `data` and `ctrl` are final, but `rf` covers only a prefix of the
    /// reads and `co` only a prefix of each location's coherence chain
    /// (always transitively closed so far). `partial.outcome` is
    /// meaningless at this point.
    ///
    /// # Contract
    ///
    /// Returning [`PartialVerdict::Forbidden`] asserts that [`check`]
    /// would return [`Verdict::Forbidden`] for **every** extension of
    /// `partial` — the base relations only *grow* along a branch, so any
    /// monotone violation (a cycle in a union of growing relations, a
    /// non-empty intersection of growing relations) is safe to report.
    /// Non-monotone conditions (anything involving complement or
    /// difference of a growing relation) must return `Undecided`.
    ///
    /// The default is a no-op, so models that only implement [`check`]
    /// work unchanged — they simply forgo pruning. (The `telechat-cat`
    /// interpreted models prune through their *combo sessions* instead:
    /// their staged engine classifies the monotone fragment of the Cat
    /// program and answers partial verdicts from per-edge incremental
    /// state — see `telechat_cat::staged`.)
    ///
    /// [`check`]: ConsistencyModel::check
    fn check_partial(&self, _partial: &Execution) -> PartialVerdict {
        PartialVerdict::Undecided
    }

    /// Opens a per-combo checking session.
    ///
    /// `skeleton` is the combo's candidate with the *fixed* relations
    /// populated (events, `po`, `rmw`, `addr`, `data`, `ctrl`) and
    /// `rf`/`co` still empty. A model may precompute anything that is
    /// constant across every rf/co choice of the combo — derived
    /// relations like `loc`/`ext`/`int`, annotation sets, the event
    /// universe — and reuse it for each candidate, instead of rebuilding
    /// per candidate. The default session simply forwards to
    /// [`check`]/[`check_partial`].
    ///
    /// [`check`]: ConsistencyModel::check
    /// [`check_partial`]: ConsistencyModel::check_partial
    fn combo_checker<'a>(&'a self, _skeleton: &Execution) -> Box<dyn ComboChecker + 'a> {
        Box::new(ForwardingChecker(self))
    }
}

/// A per-combo checking session (see [`ConsistencyModel::combo_checker`]).
///
/// The enumeration engine creates one per trace combination and funnels
/// every full and partial candidate of that combo through it, so
/// implementations can hold combo-constant derived data.
///
/// # Incremental sessions
///
/// A session that returns `true` from [`incremental`] opts into the
/// engine's *edge-delta* protocol instead of whole-candidate re-checks:
/// the engine calls [`push_rf`]/[`push_co`] for **every** edge assignment
/// of the DFS (not just when it wants a verdict) and the matching
/// [`pop_rf`]/[`pop_co`] on backtrack, strictly LIFO — all rf pushes
/// precede all co pushes along a branch, mirroring the enumeration stages.
/// The returned verdict carries the same contract as
/// [`ConsistencyModel::check_partial`]; the engine prunes the subtree the
/// moment it sees `Forbidden`. At a DFS leaf the pushed state describes
/// the *complete* candidate, and [`check`] is called with the session in
/// exactly that state — an incremental session may answer from its own
/// state in O(1) instead of re-deriving relations.
///
/// [`incremental`]: ComboChecker::incremental
/// [`push_rf`]: ComboChecker::push_rf
/// [`push_co`]: ComboChecker::push_co
/// [`pop_rf`]: ComboChecker::pop_rf
/// [`pop_co`]: ComboChecker::pop_co
/// [`check`]: ComboChecker::check
pub trait ComboChecker: Send {
    /// Judges one complete candidate (same contract as
    /// [`ConsistencyModel::check`]).
    fn check(&self, execution: &Execution) -> Verdict;

    /// Judges one partial candidate (same contract as
    /// [`ConsistencyModel::check_partial`]).
    fn check_partial(&self, partial: &Execution) -> PartialVerdict;

    /// True if this session maintains incremental edge state (see the
    /// trait docs). Non-incremental sessions keep the re-check protocol.
    fn incremental(&self) -> bool {
        false
    }

    /// The engine assigned `rf(w, r)`: read `r` is justified by write `w`.
    /// `partial` already contains the edge.
    fn push_rf(&mut self, _partial: &Execution, _w: EventId, _r: EventId) -> PartialVerdict {
        PartialVerdict::Undecided
    }

    /// Undoes the most recent [`push_rf`](ComboChecker::push_rf).
    fn pop_rf(&mut self, _partial: &Execution, _w: EventId, _r: EventId) {}

    /// The engine extended a location's coherence chain with write `w`:
    /// `co(p, w)` was added for every `p` in `preds` (the chain so far, in
    /// coherence order, init write first). `partial` already contains the
    /// edges.
    fn push_co(&mut self, _partial: &Execution, _preds: &[EventId], _w: EventId) -> PartialVerdict {
        PartialVerdict::Undecided
    }

    /// Undoes the most recent [`push_co`](ComboChecker::push_co).
    fn pop_co(&mut self, _partial: &Execution, _preds: &[EventId], _w: EventId) {}

    /// Folds every edge pushed so far into the session's permanent
    /// baseline: subsequent pops may only unwind pushes made *after* this
    /// call, and the absorbed pushes will never be popped.
    ///
    /// The work-stealing enumerator calls this once per stolen DFS
    /// frontier, after replaying the frontier's forced edge prefix — the
    /// session is then re-seeded from the split point exactly like a fresh
    /// session opened on the extended skeleton, but without re-deriving
    /// any combo-constant state. Sessions backed by
    /// [`IncrementalOrder`] implement it with the existing
    /// [`IncrementalOrder::snapshot`]; the default is a no-op.
    fn absorb(&mut self) {}

    /// The first-violated rule name in the session's *current* state, for
    /// prune attribution: called by the enumerator right after a push (or
    /// recheck) answered `Forbidden`, before the edge is unwound. `None`
    /// when the session cannot name a rule (plain forwarding sessions) —
    /// the prune is still charged, just unattributed. The answer must be a
    /// pure function of the pushed-edge set, so attribution totals stay
    /// byte-identical across thread counts.
    fn blame(&self) -> Option<&str> {
        None
    }
}

/// The default session: no combo-constant state, plain forwarding.
struct ForwardingChecker<'a, M: ConsistencyModel + ?Sized>(&'a M);

impl<M: ConsistencyModel + ?Sized> ComboChecker for ForwardingChecker<'_, M> {
    fn check(&self, execution: &Execution) -> Verdict {
        self.0.check(execution)
    }

    fn check_partial(&self, partial: &Execution) -> PartialVerdict {
        self.0.check_partial(partial)
    }
}

/// The weakest model: every candidate execution is allowed. Useful as an
/// upper bound and in enumerator tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl ConsistencyModel for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn check(&self, _execution: &Execution) -> Verdict {
        Verdict::allowed()
    }
}

/// Lamport sequential consistency: `acyclic (po | rf | co | fr)` — the
/// strongest bundled model, used as a reference bound and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCstRef;

impl ConsistencyModel for SeqCstRef {
    fn name(&self) -> &str {
        "sc-ref"
    }

    fn check(&self, x: &Execution) -> Verdict {
        let com = x.po.union(&x.rf).union(&x.co).union(&x.fr());
        if com.is_acyclic() {
            Verdict::allowed()
        } else {
            Verdict::Forbidden {
                rule: "sc".into(),
            }
        }
    }

    /// A cycle in `po | rf | co | fr` can only persist as the relations
    /// grow, so partial cyclicity rejects the whole subtree.
    fn check_partial(&self, x: &Execution) -> PartialVerdict {
        let fr = x.fr();
        if Relation::union_is_acyclic(&[&x.po, &x.rf, &x.co, &fr]) {
            PartialVerdict::Undecided
        } else {
            PartialVerdict::Forbidden
        }
    }

    /// Incremental session: acyclicity of `po | rf | co | fr` is tracked by
    /// an [`IncrementalOrder`] seeded with `po` and updated per DFS edge —
    /// no full traversal per node, O(1) verdicts at leaves.
    fn combo_checker<'a>(&'a self, skeleton: &Execution) -> Box<dyn ComboChecker + 'a> {
        Box::new(SeqCstSession::new(skeleton))
    }
}

/// [`SeqCstRef`]'s incremental combo session.
///
/// State: the incremental reachability order over `po ∪ rf ∪ co ∪ fr`,
/// plus an `rf⁻¹` mirror (`readers`) so a coherence push can derive its
/// `fr` delta — a new `co(p, w)` edge contributes `fr(r, w)` for exactly
/// the reads `r` justified by `p`.
struct SeqCstSession {
    order: IncrementalOrder,
    readers: Relation,
}

impl SeqCstSession {
    fn new(skeleton: &Execution) -> SeqCstSession {
        SeqCstSession {
            order: IncrementalOrder::new(skeleton.events.len(), &[&skeleton.po]),
            readers: Relation::with_nodes(skeleton.events.len()),
        }
    }

    fn verdict(&self) -> PartialVerdict {
        if self.order.is_acyclic() {
            PartialVerdict::Undecided
        } else {
            PartialVerdict::Forbidden
        }
    }
}

impl ComboChecker for SeqCstSession {
    fn check(&self, _execution: &Execution) -> Verdict {
        if self.order.is_acyclic() {
            Verdict::allowed()
        } else {
            Verdict::Forbidden { rule: "sc".into() }
        }
    }

    fn check_partial(&self, _partial: &Execution) -> PartialVerdict {
        self.verdict()
    }

    fn incremental(&self) -> bool {
        true
    }

    fn push_rf(&mut self, _partial: &Execution, w: EventId, r: EventId) -> PartialVerdict {
        self.order.begin();
        self.order.add_edge(w, r);
        self.readers.insert(w, r);
        self.verdict()
    }

    fn pop_rf(&mut self, _partial: &Execution, w: EventId, r: EventId) {
        self.readers.remove(w, r);
        self.order.undo();
    }

    fn push_co(&mut self, _partial: &Execution, preds: &[EventId], w: EventId) -> PartialVerdict {
        self.order.begin();
        for &p in preds {
            self.order.add_edge(p, w);
            for r in self.readers.successors(p) {
                if r != w {
                    self.order.add_edge(r, w); // fr(r, w) = rf⁻¹(r, p) ; co(p, w)
                }
            }
        }
        self.verdict()
    }

    fn pop_co(&mut self, _partial: &Execution, _preds: &[EventId], _w: EventId) {
        self.order.undo();
    }

    fn absorb(&mut self) {
        // The `readers` mirror needs no frame handling: absorbed edges are
        // never popped, so the plain bit-matrix is already consistent.
        self.order.snapshot();
    }

    fn blame(&self) -> Option<&str> {
        (!self.order.is_acyclic()).then_some("sc")
    }
}

/// SC-per-location only (coherence): `acyclic (po-loc | rf | co | fr)` plus
/// RMW atomicity. Allows every reordering across locations — close to the
/// weakest *plausible* hardware, handy for differential bounds in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceOnly;

impl ConsistencyModel for CoherenceOnly {
    fn name(&self) -> &str {
        "coherence"
    }

    fn check(&self, x: &Execution) -> Verdict {
        match coherence_violation(&x.po_loc(), &x.ext_rel(), x) {
            Some(rule) => Verdict::Forbidden { rule: rule.into() },
            None => Verdict::allowed(),
        }
    }

    /// Both axioms are monotone — a per-location cycle stays a cycle, a
    /// non-empty `rmw & (fre;coe)` stays non-empty — so either firing on
    /// a partial candidate rejects the subtree.
    fn check_partial(&self, x: &Execution) -> PartialVerdict {
        if coherence_violation(&x.po_loc(), &x.ext_rel(), x).is_some() {
            PartialVerdict::Forbidden
        } else {
            PartialVerdict::Undecided
        }
    }

    /// Incremental session: per-location acyclicity via an
    /// [`IncrementalOrder`] seeded with `po-loc`, atomicity via `co`/`fr`
    /// mirrors updated per edge — no re-derivation per candidate.
    fn combo_checker<'a>(&'a self, skeleton: &Execution) -> Box<dyn ComboChecker + 'a> {
        Box::new(CoherenceSession::new(skeleton))
    }
}

/// The one-shot (non-incremental) coherence test, shared by
/// [`CoherenceOnly::check`] and [`CoherenceOnly::check_partial`]:
/// `acyclic (po-loc | rf | co | fr)` plus RMW atomicity.
fn coherence_violation(po_loc: &Relation, ext: &Relation, x: &Execution) -> Option<&'static str> {
    let fr = x.fr();
    if !Relation::union_is_acyclic(&[po_loc, &x.rf, &x.co, &fr]) {
        return Some("coherence");
    }
    let fre = fr.inter(ext);
    let coe = x.co.inter(ext);
    if !x.rmw.inter(&fre.seq(&coe)).is_empty() {
        return Some("atomicity");
    }
    None
}

/// [`CoherenceOnly`]'s incremental combo session.
///
/// Alongside the reachability order (seeded with the combo-constant
/// `po-loc`), the session mirrors `rf⁻¹`, `co` and `fr` as bit-matrices so
/// the RMW-atomicity axiom `empty rmw & (fre ; coe)` is a few-word probe
/// per rmw pair instead of an intersection + composition per candidate.
struct CoherenceSession {
    order: IncrementalOrder,
    readers: Relation,
    co: Relation,
    fr: Relation,
    ext: Relation,
    rmw: Vec<(EventId, EventId)>,
}

impl CoherenceSession {
    fn new(skeleton: &Execution) -> CoherenceSession {
        let n = skeleton.events.len();
        CoherenceSession {
            order: IncrementalOrder::new(n, &[&skeleton.po_loc()]),
            readers: Relation::with_nodes(n),
            co: Relation::with_nodes(n),
            fr: Relation::with_nodes(n),
            ext: skeleton.ext_rel(),
            rmw: skeleton.rmw.iter().collect(),
        }
    }

    /// `rmw & (fre ; coe)` emptiness over the mirrors.
    fn atomicity_ok(&self) -> bool {
        for &(r, w2) in &self.rmw {
            for w1 in self.fr.successors(r) {
                if self.ext.contains(r, w1)
                    && self.co.contains(w1, w2)
                    && self.ext.contains(w1, w2)
                {
                    return false;
                }
            }
        }
        true
    }

    fn verdict(&self) -> PartialVerdict {
        if self.order.is_acyclic() && self.atomicity_ok() {
            PartialVerdict::Undecided
        } else {
            PartialVerdict::Forbidden
        }
    }
}

impl ComboChecker for CoherenceSession {
    fn check(&self, _execution: &Execution) -> Verdict {
        if !self.order.is_acyclic() {
            return Verdict::Forbidden {
                rule: "coherence".into(),
            };
        }
        if !self.atomicity_ok() {
            return Verdict::Forbidden {
                rule: "atomicity".into(),
            };
        }
        Verdict::allowed()
    }

    fn check_partial(&self, _partial: &Execution) -> PartialVerdict {
        self.verdict()
    }

    fn incremental(&self) -> bool {
        true
    }

    fn push_rf(&mut self, _partial: &Execution, w: EventId, r: EventId) -> PartialVerdict {
        self.order.begin();
        self.order.add_edge(w, r);
        self.readers.insert(w, r);
        self.verdict()
    }

    fn pop_rf(&mut self, _partial: &Execution, w: EventId, r: EventId) {
        self.readers.remove(w, r);
        self.order.undo();
    }

    fn push_co(&mut self, _partial: &Execution, preds: &[EventId], w: EventId) -> PartialVerdict {
        self.order.begin();
        for &p in preds {
            self.order.add_edge(p, w);
            self.co.insert(p, w);
            for r in self.readers.successors(p) {
                if r != w {
                    self.order.add_edge(r, w);
                    self.fr.insert(r, w);
                }
            }
        }
        self.verdict()
    }

    fn pop_co(&mut self, _partial: &Execution, preds: &[EventId], w: EventId) {
        for &p in preds {
            self.co.remove(p, w);
            for r in self.readers.successors(p) {
                if r != w {
                    self.fr.remove(r, w);
                }
            }
        }
        self.order.undo();
    }

    fn absorb(&mut self) {
        // `readers`/`co`/`fr` are plain mirrors (no undo frames); only the
        // reachability order carries journal state to collapse.
        self.order.snapshot();
    }

    fn blame(&self) -> Option<&str> {
        if !self.order.is_acyclic() {
            Some("coherence")
        } else if !self.atomicity_ok() {
            Some("atomicity")
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, INIT_THREAD};
    use crate::rel::Relation;
    use telechat_common::{AnnotSet, EventId, Loc, Outcome, ThreadId, Val};

    fn sb_violation() -> Execution {
        // SB weak outcome: both reads see 0 — a (po|rf|co|fr) cycle.
        let ev = |id: u32, thread, po_index, kind, loc: &str, val: i64| Event {
            id: EventId(id),
            thread,
            po_index,
            kind,
            loc: Some(Loc::new(loc)),
            val: Some(Val::Int(val)),
            annot: AnnotSet::EMPTY,
        };
        let events = vec![
            ev(0, INIT_THREAD, 0, EventKind::Write, "x", 0),
            ev(1, INIT_THREAD, 1, EventKind::Write, "y", 0),
            ev(2, ThreadId(0), 0, EventKind::Write, "x", 1),
            ev(3, ThreadId(0), 1, EventKind::Read, "y", 0),
            ev(4, ThreadId(1), 0, EventKind::Write, "y", 1),
            ev(5, ThreadId(1), 1, EventKind::Read, "x", 0),
        ];
        let mut po = Relation::new();
        po.insert(EventId(2), EventId(3));
        po.insert(EventId(4), EventId(5));
        let mut rf = Relation::new();
        rf.insert(EventId(1), EventId(3));
        rf.insert(EventId(0), EventId(5));
        let mut co = Relation::new();
        co.insert(EventId(0), EventId(2));
        co.insert(EventId(1), EventId(4));
        Execution {
            events,
            po,
            rf,
            co,
            rmw: Relation::new(),
            addr: Relation::new(),
            data: Relation::new(),
            ctrl: Relation::new(),
            outcome: Outcome::new(),
        }
    }

    #[test]
    fn sc_forbids_store_buffering() {
        let x = sb_violation();
        assert!(!SeqCstRef.check(&x).is_allowed());
        assert!(AllowAll.check(&x).is_allowed());
        // Coherence alone allows SB (the cycle crosses locations).
        assert!(CoherenceOnly.check(&x).is_allowed());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::allowed().is_allowed());
        assert!(!Verdict::Forbidden { rule: "r".into() }.is_allowed());
    }
}
