//! The consistency-model interface.
//!
//! The enumerator produces candidate executions; a [`ConsistencyModel`]
//! filters out the forbidden ones (paper §II-A: "a memory consistency model
//! filters out forbidden executions of a litmus test"). The real models live
//! in `telechat-cat` as mini-Cat programs; this crate only defines the
//! interface plus two built-in reference models used for testing and as the
//! strongest/weakest bounds.

use crate::event::Execution;

/// A model's judgement of one candidate execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The execution is allowed; `flags` carries any `flag` checks that
    /// fired (e.g. `race` for a C11 data race, `const-write` for a store to
    /// read-only memory).
    Allowed {
        /// Names of fired flag checks.
        flags: Vec<String>,
    },
    /// The execution is forbidden by the named rule.
    Forbidden {
        /// Name of the first violated check.
        rule: String,
    },
}

impl Verdict {
    /// Allowed with no flags.
    pub fn allowed() -> Verdict {
        Verdict::Allowed { flags: Vec::new() }
    }

    /// True if allowed (flags or not).
    pub fn is_allowed(&self) -> bool {
        matches!(self, Verdict::Allowed { .. })
    }
}

/// A memory consistency model: a predicate over candidate executions.
pub trait ConsistencyModel: Send + Sync {
    /// Model name (e.g. `rc11`, `aarch64`).
    fn name(&self) -> &str;

    /// Judges one candidate execution.
    fn check(&self, execution: &Execution) -> Verdict;
}

/// The weakest model: every candidate execution is allowed. Useful as an
/// upper bound and in enumerator tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl ConsistencyModel for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn check(&self, _execution: &Execution) -> Verdict {
        Verdict::allowed()
    }
}

/// Lamport sequential consistency: `acyclic (po | rf | co | fr)` — the
/// strongest bundled model, used as a reference bound and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCstRef;

impl ConsistencyModel for SeqCstRef {
    fn name(&self) -> &str {
        "sc-ref"
    }

    fn check(&self, x: &Execution) -> Verdict {
        let com = x.po.union(&x.rf).union(&x.co).union(&x.fr());
        if com.is_acyclic() {
            Verdict::allowed()
        } else {
            Verdict::Forbidden {
                rule: "sc".into(),
            }
        }
    }
}

/// SC-per-location only (coherence): `acyclic (po-loc | rf | co | fr)` plus
/// RMW atomicity. Allows every reordering across locations — close to the
/// weakest *plausible* hardware, handy for differential bounds in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceOnly;

impl ConsistencyModel for CoherenceOnly {
    fn name(&self) -> &str {
        "coherence"
    }

    fn check(&self, x: &Execution) -> Verdict {
        let com = x.po_loc().union(&x.rf).union(&x.co).union(&x.fr());
        if !com.is_acyclic() {
            return Verdict::Forbidden {
                rule: "coherence".into(),
            };
        }
        // Atomicity: no write intervenes between an RMW's read and write.
        let fre = x.fr().inter(&x.ext_rel());
        let coe = x.co.inter(&x.ext_rel());
        if !x.rmw.inter(&fre.seq(&coe)).is_empty() {
            return Verdict::Forbidden {
                rule: "atomicity".into(),
            };
        }
        Verdict::allowed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, INIT_THREAD};
    use crate::rel::Relation;
    use telechat_common::{AnnotSet, EventId, Loc, Outcome, ThreadId, Val};

    fn sb_violation() -> Execution {
        // SB weak outcome: both reads see 0 — a (po|rf|co|fr) cycle.
        let ev = |id: u32, thread, po_index, kind, loc: &str, val: i64| Event {
            id: EventId(id),
            thread,
            po_index,
            kind,
            loc: Some(Loc::new(loc)),
            val: Some(Val::Int(val)),
            annot: AnnotSet::EMPTY,
        };
        let events = vec![
            ev(0, INIT_THREAD, 0, EventKind::Write, "x", 0),
            ev(1, INIT_THREAD, 1, EventKind::Write, "y", 0),
            ev(2, ThreadId(0), 0, EventKind::Write, "x", 1),
            ev(3, ThreadId(0), 1, EventKind::Read, "y", 0),
            ev(4, ThreadId(1), 0, EventKind::Write, "y", 1),
            ev(5, ThreadId(1), 1, EventKind::Read, "x", 0),
        ];
        let mut po = Relation::new();
        po.insert(EventId(2), EventId(3));
        po.insert(EventId(4), EventId(5));
        let mut rf = Relation::new();
        rf.insert(EventId(1), EventId(3));
        rf.insert(EventId(0), EventId(5));
        let mut co = Relation::new();
        co.insert(EventId(0), EventId(2));
        co.insert(EventId(1), EventId(4));
        Execution {
            events,
            po,
            rf,
            co,
            rmw: Relation::new(),
            addr: Relation::new(),
            data: Relation::new(),
            ctrl: Relation::new(),
            outcome: Outcome::new(),
        }
    }

    #[test]
    fn sc_forbids_store_buffering() {
        let x = sb_violation();
        assert!(!SeqCstRef.check(&x).is_allowed());
        assert!(AllowAll.check(&x).is_allowed());
        // Coherence alone allows SB (the cycle crosses locations).
        assert!(CoherenceOnly.check(&x).is_allowed());
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::allowed().is_allowed());
        assert!(!Verdict::Forbidden { rule: "r".into() }.is_allowed());
    }
}
