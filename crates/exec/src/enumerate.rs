//! The incremental candidate-execution enumeration engine.
//!
//! This is the herd-equivalent core (paper §II-A): enumerate every
//! candidate execution of a litmus test — combinations of per-thread
//! traces, a reads-from assignment and a per-location coherence order —
//! filter them through a consistency model, and collect the outcomes of
//! the allowed ones. The enumeration cost is the product of per-thread
//! trace counts, rf choices per read and coherence permutations per
//! location; that product is what explodes on unoptimised compiled tests
//! (paper §IV-E / Fig. 11).
//!
//! # Architecture: staged builder with pruning and parallel combos
//!
//! The engine is organised as a three-stage pipeline per *combo* (one
//! choice of per-thread traces), instead of the naive
//! generate-all-then-filter loop (retained in [`crate::reference`] as the
//! differential-testing oracle):
//!
//! 1. **Combine** — [`build_combined`] assembles the combo's event graph
//!    once: events, transitive `po` (built in one pass via
//!    [`Relation::total_order`]), and the `rmw`/`addr`/`data`/`ctrl`
//!    dependency relations. These are *fixed* for every candidate of the
//!    combo and shared immutably; only `rf`, `co` and the outcome vary.
//! 2. **Assign rf** — reads are justified one at a time over their
//!    statically-filtered candidate writes (same location, same value, not
//!    po-later in the same thread). After each assignment the model's
//!    [`ConsistencyModel::check_partial`] fast-reject hook runs; a
//!    `Forbidden` verdict prunes the whole subtree *before* any coherence
//!    order is enumerated.
//! 3. **Assign co** — coherence orders are generated lazily, one write at
//!    a time per location (swap-based permutation DFS with undo), never
//!    materialising the `n!` permutation lists up front. The partial `co`
//!    is kept transitively closed, so `check_partial` sees exactly the
//!    prefix relations and can cut entire permutation subtrees.
//!
//! Pruned subtrees are still *accounted*: the engine adds the number of
//! complete candidates a cut subtree contains to the candidate counter,
//! so [`SimResult::candidates`] and the [`SimConfig::max_candidates`]
//! budget behave identically to exhaustive enumeration — pruning changes
//! time, not semantics.
//!
//! # Parallelism and determinism
//!
//! Trace combos are independent, so they are sharded across
//! [`SimConfig::threads`] workers (an atomic work-list over the linear
//! combo index). Each worker accumulates a private outcome shard; shards
//! are merged in combo order after the join. Outcome sets, flags, counts
//! and the crash bit are set unions/sums, so **results are identical for
//! every thread count**; with `threads = 1` the engine degenerates to the
//! exact sequential enumeration order of the reference engine.
//!
//! # Intra-combo work stealing
//!
//! Combo-granular sharding starves when a simulation has fewer combos
//! than workers (one giant combo monopolises the budget while the other
//! workers idle). When `threads > 1` and the combo count is below the
//! worker count, the engine switches to **frontier tasks**: a sequential
//! pre-pass sizes each combo's decision tree — rf choice arities first,
//! then the `m, m-1, …, 1` arities of each location's coherence positions
//! — and picks the shallowest split depth `D` whose arity product reaches
//! `threads × 4`. Every task is one assignment of the first `D` decisions
//! (a mixed-radix index, most-significant-first, so ascending task ids
//! walk the exact sequential DFS order), and workers claim task ids from
//! the same atomic work-list.
//!
//! A worker *replays* its task's forced prefix — pushing each pre-decoded
//! edge through the combo session so incremental checkers see the same
//! prefix states the sequential DFS saw — then calls
//! [`crate::model::ComboChecker::absorb`] to fold the prefix into the
//! session baseline (for `IncrementalOrder`-backed sessions this is the
//! existing `snapshot`, i.e. the worker's pool order is re-seeded from the
//! split point), and runs the ordinary swap-DFS below `D`. Forced-level
//! prunes charge the task's *tail product* (the candidates under one task)
//! rather than the sequential subtree; summed over the sibling tasks that
//! replay the same pruned prefix this equals the sequential charge
//! exactly, so candidate accounting, outcome sets and kept executions
//! (merged by ascending task id) stay **byte-identical to the sequential
//! DFS** at every thread count.

use crate::config::{PruneSites, SimConfig, SimResult};
use crate::event::{Event, EventKind, Execution, INIT_THREAD};
use crate::model::{ConsistencyModel, PartialVerdict, Verdict};
use crate::rel::Relation;
use crate::trace::{interpret_thread, value_pools, InterpBudget, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use telechat_common::{
    Annot, AnnotSet, Error, EventId, Loc, Outcome, OutcomeSet, Reg, Result, StateKey, ThreadId,
    Val,
};
use telechat_litmus::LitmusTest;

/// Interprets every thread of `test`, returning the complete traces per
/// thread (shared by the incremental and reference engines).
pub(crate) fn interpret_all_traces(
    test: &LitmusTest,
    config: &SimConfig,
) -> Result<Vec<Vec<Trace>>> {
    let mut budget = InterpBudget::new(config.max_steps);
    let pools = value_pools(test, config.unroll, config.max_pool_iters, &mut budget)?;
    let mut thread_traces: Vec<Vec<Trace>> = Vec::with_capacity(test.threads.len());
    for t in 0..test.threads.len() {
        let mut traces = interpret_thread(
            test,
            ThreadId(t as u8),
            &pools,
            config.unroll,
            config.excl_fail_paths,
            &mut budget,
        )?;
        traces.retain(|tr| tr.complete);
        traces.dedup();
        thread_traces.push(traces);
    }
    Ok(thread_traces)
}

/// Simulates `test` under `model` (the paper's `herd(P, M)`).
///
/// # Errors
///
/// * [`Error::Timeout`] / [`Error::Budget`] on state explosion — the
///   behaviour the paper reports for unoptimised compiled tests;
/// * [`Error::IllFormed`] if the test is structurally invalid.
pub fn simulate(
    test: &LitmusTest,
    model: &dyn ConsistencyModel,
    config: &SimConfig,
) -> Result<SimResult> {
    test.validate()?;
    let start = Instant::now();
    let ft_start = crate::rel::full_traversals();
    let deadline = config.timeout.map(|t| start + t);

    let thread_traces = interpret_all_traces(test, config)?;

    let observed = test.observed_keys();
    let readonly: BTreeSet<Loc> = test
        .locs
        .iter()
        .filter(|d| d.readonly)
        .map(|d| d.loc.clone())
        .collect();

    let mut result = SimResult {
        outcomes: OutcomeSet::new(),
        candidates: 0,
        allowed: 0,
        flags: BTreeSet::new(),
        crashed: false,
        executions: Vec::new(),
        full_traversals: 0,
        pruned_candidates: 0,
        steal_tasks: 0,
        rule_leaves: BTreeMap::new(),
        rule_prunes: BTreeMap::new(),
        prune_sites: PruneSites::default(),
        combo_candidates: telechat_obs::Histogram::new(),
        elapsed: start.elapsed(),
    };

    // If any thread has no complete trace there are no executions.
    if thread_traces.iter().any(Vec::is_empty) {
        result.elapsed = start.elapsed();
        return Ok(result);
    }

    // Total combos; the linear index decodes with thread 0 least
    // significant, matching the reference odometer's enumeration order.
    let counts: Vec<u64> = thread_traces.iter().map(|t| t.len() as u64).collect();
    let total128: u128 = counts.iter().map(|&c| u128::from(c)).product();
    let total: u64 = total128.min(u128::from(u64::MAX)) as u64;

    let threads = config
        .threads
        .max(1)
        .min(usize::try_from(total).unwrap_or(usize::MAX));

    let shared = Shared {
        next: AtomicU64::new(0),
        candidates: AtomicU64::new(0),
        pruned: AtomicU64::new(0),
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
    };

    let ctx = WorkerCtx {
        test,
        model,
        config,
        observed: &observed,
        readonly: &readonly,
        deadline,
        thread_traces: &thread_traces,
        counts: &counts,
        total,
        shared: &shared,
    };

    // Fewer combos than workers: switch to intra-combo frontier tasks so
    // idle workers steal unexplored subtrees of the swap-DFS (module docs).
    let task_mode = config.threads > 1 && total < config.threads as u64;

    // Spawned workers start with a fresh thread-local traversal counter,
    // so their final value is their contribution; the spawning thread
    // reports its delta. They also re-parent their trace spans under the
    // caller's current span (the simulation leg).
    let parent_span = telechat_obs::current();
    let mut worker_traversals = 0u64;
    let mut steal_tasks = 0u64;
    let mut shards: Vec<Vec<(u64, ComboOut)>> = if task_mode {
        let plans = build_task_plans(&ctx);
        let total_tasks = plans.last().map_or(0, |p| p.first_task + p.tasks);
        steal_tasks = total_tasks;
        let workers = config
            .threads
            .min(usize::try_from(total_tasks).unwrap_or(usize::MAX));
        if total_tasks == 0 {
            Vec::new()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let _trace = telechat_obs::adopt(parent_span);
                            let shard = run_task_worker(&ctx, &plans, total_tasks);
                            (shard, crate::rel::full_traversals())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (shard, ft) = h.join().expect("enumeration worker panicked");
                        worker_traversals += ft;
                        shard
                    })
                    .collect()
            })
        }
    } else if threads == 1 {
        vec![run_worker(&ctx)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let _trace = telechat_obs::adopt(parent_span);
                        (run_worker(&ctx), crate::rel::full_traversals())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (shard, ft) = h.join().expect("enumeration worker panicked");
                    worker_traversals += ft;
                    shard
                })
                .collect()
        })
    };

    if let Some((_, e)) = shared.error.lock().expect("error slot").take() {
        return Err(e);
    }

    // Deterministic merge: combo order, regardless of which worker ran what.
    let mut outs: Vec<(u64, ComboOut)> = shards.drain(..).flatten().collect();
    outs.sort_unstable_by_key(|(idx, _)| *idx);
    // Per-combo DFS sizes: after the sort, task-mode shards of one combo
    // are contiguous (ascending task ids walk ascending combos), so one
    // histogram sample per combo is the group's charge sum. Zero-charge
    // groups are skipped — a combo-mode worker emits an empty shard for an
    // unjustifiable-read combo where task mode emits no tasks at all —
    // keeping the histogram byte-identical across both scheduling modes.
    let mut combo_group: Option<u64> = None;
    let mut combo_charge = 0u64;
    for (_, out) in outs {
        if combo_group != Some(out.combo_idx) {
            if combo_charge > 0 {
                result.combo_candidates.record(combo_charge);
            }
            combo_group = Some(out.combo_idx);
            combo_charge = 0;
        }
        combo_charge += out.charged;
        result.allowed += out.allowed;
        result.crashed |= out.crashed;
        result.flags.extend(out.flags);
        result.prune_sites.merge(&out.prune_sites);
        for (rule, n) in out.rule_leaves {
            *result.rule_leaves.entry(rule).or_insert(0) += n;
        }
        for (rule, n) in out.rule_prunes {
            *result.rule_prunes.entry(rule).or_insert(0) += n;
        }
        for o in out.outcomes.iter() {
            result.outcomes.insert(o.clone());
        }
        for x in out.executions {
            if result.executions.len() < config.max_kept {
                result.executions.push(x);
            }
        }
    }
    if combo_charge > 0 {
        result.combo_candidates.record(combo_charge);
    }
    result.candidates = shared.candidates.load(Ordering::Relaxed);
    result.pruned_candidates = shared.pruned.load(Ordering::Relaxed);
    result.steal_tasks = steal_tasks;
    result.full_traversals =
        (crate::rel::full_traversals() - ft_start).saturating_add(worker_traversals);
    result.elapsed = start.elapsed();
    Ok(result)
}

/// Cross-worker coordination state.
struct Shared {
    /// Next linear combo index to claim.
    next: AtomicU64,
    /// Candidate counter (examined + pruned-accounted), shared so the
    /// budget is global like the sequential engine's.
    candidates: AtomicU64,
    /// The pruned-subtree slice of `candidates` (charge sums, not prune
    /// events, so the total matches the sequential DFS at every thread
    /// count and in task mode).
    pruned: AtomicU64,
    /// Set on error; workers stop claiming and unwind.
    abort: AtomicBool,
    /// First error by lowest combo index (deterministic for `threads = 1`).
    error: Mutex<Option<(u64, Error)>>,
}

/// Everything a worker needs, by reference.
struct WorkerCtx<'a> {
    test: &'a LitmusTest,
    model: &'a dyn ConsistencyModel,
    config: &'a SimConfig,
    observed: &'a BTreeSet<StateKey>,
    readonly: &'a BTreeSet<Loc>,
    deadline: Option<Instant>,
    thread_traces: &'a [Vec<Trace>],
    counts: &'a [u64],
    total: u64,
    shared: &'a Shared,
}

/// One combo's private result shard.
#[derive(Default)]
struct ComboOut {
    /// Linear combo index this shard belongs to (set by the claim loops;
    /// in task mode several shards share one combo). The merge groups
    /// shards by this to record per-combo DFS sizes.
    combo_idx: u64,
    /// Candidate charge (leaves + pruned subtrees) accounted inside this
    /// shard's DFS.
    charged: u64,
    /// Forbidden-leaf tally per first-violated rule name.
    rule_leaves: BTreeMap<String, u64>,
    /// Pruned charge per blamed rule name (mid-DFS rejections).
    rule_prunes: BTreeMap<String, u64>,
    /// Pruned charge per enumeration prune site.
    prune_sites: PruneSites,
    outcomes: OutcomeSet,
    allowed: u64,
    flags: BTreeSet<String>,
    crashed: bool,
    executions: Vec<Execution>,
}

/// Why a combo stopped early.
enum Stop {
    /// Another worker failed; discard quietly.
    Cancelled,
    /// This worker hit a budget/timeout.
    Fatal(Error),
}

/// Decodes a linear combo index into per-thread trace choices (thread 0
/// least significant, matching the reference odometer's order).
fn decode_combo<'a>(ctx: &WorkerCtx<'a>, idx: u64) -> Vec<&'a Trace> {
    let mut rem = idx;
    ctx.counts
        .iter()
        .enumerate()
        .map(|(t, &c)| {
            let i = (rem % c) as usize;
            rem /= c;
            &ctx.thread_traces[t][i]
        })
        .collect()
}

/// Cross-worker abort / deadline poll at claim boundaries. The intra-combo
/// deadline tick only fires every 256 leaves, so a workload whose
/// explosion is in *combinations* (many combos, each small) must also poll
/// here. Returns `true` when the worker should unwind.
fn poll_stop(ctx: &WorkerCtx<'_>) -> bool {
    if ctx.shared.abort.load(Ordering::Relaxed) {
        return true;
    }
    if let Some(d) = ctx.deadline {
        if Instant::now() > d {
            let limit_ms = ctx.config.timeout.map(|t| t.as_millis() as u64).unwrap_or(0);
            let mut slot = ctx.shared.error.lock().expect("error slot");
            if slot.is_none() {
                *slot = Some((u64::MAX, Error::Timeout { limit_ms }));
            }
            ctx.shared.abort.store(true, Ordering::Relaxed);
            return true;
        }
    }
    false
}

fn run_worker(ctx: &WorkerCtx<'_>) -> Vec<(u64, ComboOut)> {
    let mut local = Vec::new();
    loop {
        if poll_stop(ctx) {
            return local;
        }
        let idx = ctx.shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= ctx.total {
            return local;
        }
        let _span = telechat_obs::span_idx("combo", idx);
        let traces = decode_combo(ctx, idx);
        match run_combo(ctx, &traces, Vec::new(), 1) {
            Ok(mut out) => {
                out.combo_idx = idx;
                local.push((idx, out));
            }
            Err(Stop::Cancelled) => return local,
            Err(Stop::Fatal(e)) => {
                let mut slot = ctx.shared.error.lock().expect("error slot");
                if slot.as_ref().is_none_or(|(i, _)| idx < *i) {
                    *slot = Some((idx, e));
                }
                ctx.shared.abort.store(true, Ordering::Relaxed);
                return local;
            }
        }
    }
}

/// One combo's slice of the frontier-task space (module docs): the first
/// `arities.len()` DFS decisions are pre-assigned per task, tasks are
/// numbered `first_task ..` in sequential DFS order.
struct TaskPlan {
    /// Linear combo index (decodes to per-thread traces).
    combo_idx: u64,
    /// Global id of this combo's first frontier task.
    first_task: u64,
    /// Task count = Π `arities` (the mixed-radix space).
    tasks: u64,
    /// Arity of each *forced* decision level, in DFS order: rf choice
    /// counts first, then the descending `m-k` coherence position
    /// arities, truncated at the split depth.
    arities: Vec<u64>,
    /// Candidates under one task — the Π of the arities *below* the split
    /// depth (saturating). A forced-level prune charges this much; summed
    /// over the sibling tasks sharing the pruned prefix it equals the
    /// sequential subtree charge exactly.
    task_charge: u64,
}

/// Sizes every combo's decision tree and splits it into frontier tasks.
/// Sequential pre-pass: the task-mode trigger guarantees fewer combos
/// than workers, so the extra `build_combined` here is negligible.
fn build_task_plans(ctx: &WorkerCtx<'_>) -> Vec<TaskPlan> {
    let want = (ctx.config.threads as u64).saturating_mul(4);
    let mut plans = Vec::new();
    let mut first_task = 0u64;
    for combo_idx in 0..ctx.total {
        let traces = decode_combo(ctx, combo_idx);
        let combined = build_combined(ctx.test, &traces);
        let Some(rf_choices) = combined.rf_candidates() else {
            continue; // unjustifiable read: no candidates, no tasks
        };
        // Decision arities in DFS order: rf levels, then the co positions
        // of each location (m, m-1, …, 1 — the swap DFS picks one of the
        // remaining writes per position).
        let mut arities: Vec<u64> = rf_choices.iter().map(|c| c.len() as u64).collect();
        for writes in combined.writes_by_loc.values() {
            let m = writes.len() - 1; // element 0 is the init write
            for k in 0..m {
                arities.push((m - k) as u64);
            }
        }
        // Shallowest split depth whose arity product covers the workers a
        // few times over (load balance without flooding the claim queue);
        // the remaining tail product is the per-task charge.
        let mut tasks = 1u64;
        let mut depth = 0;
        while depth < arities.len() && tasks < want {
            tasks = tasks.saturating_mul(arities[depth]);
            depth += 1;
        }
        let task_charge = arities[depth..]
            .iter()
            .fold(1u64, |p, &a| p.saturating_mul(a));
        arities.truncate(depth);
        plans.push(TaskPlan {
            combo_idx,
            first_task,
            tasks,
            arities,
            task_charge,
        });
        first_task += tasks;
    }
    plans
}

/// The work-stealing claim loop: identical to [`run_worker`] except the
/// atomic work-list ranges over frontier tasks instead of combos, and
/// results/errors are keyed by global task id (ascending ids are
/// sequential DFS order, so the merge stays byte-identical).
fn run_task_worker(
    ctx: &WorkerCtx<'_>,
    plans: &[TaskPlan],
    total_tasks: u64,
) -> Vec<(u64, ComboOut)> {
    let mut local = Vec::new();
    loop {
        if poll_stop(ctx) {
            return local;
        }
        let tid = ctx.shared.next.fetch_add(1, Ordering::Relaxed);
        if tid >= total_tasks {
            return local;
        }
        let _span = telechat_obs::span_idx("dfs-shard", tid);
        let plan = plans
            .iter()
            .find(|p| tid >= p.first_task && tid - p.first_task < p.tasks)
            .expect("task id within plan range");
        // Mixed-radix decode, most significant (shallowest) level first:
        // ascending task ids walk forced prefixes in sequential DFS order.
        let mut forced = vec![0usize; plan.arities.len()];
        let mut rem = tid - plan.first_task;
        for (j, &a) in plan.arities.iter().enumerate().rev() {
            forced[j] = (rem % a) as usize;
            rem /= a;
        }
        let traces = decode_combo(ctx, plan.combo_idx);
        match run_combo(ctx, &traces, forced, plan.task_charge) {
            Ok(mut out) => {
                out.combo_idx = plan.combo_idx;
                local.push((tid, out));
            }
            Err(Stop::Cancelled) => return local,
            Err(Stop::Fatal(e)) => {
                let mut slot = ctx.shared.error.lock().expect("error slot");
                if slot.as_ref().is_none_or(|(i, _)| tid < *i) {
                    *slot = Some((tid, e));
                }
                ctx.shared.abort.store(true, Ordering::Relaxed);
                return local;
            }
        }
    }
}

/// Saturating factorial (subtree sizes; saturation only ever *over*-counts,
/// which can only trip the budget earlier, never later).
fn fact(n: u64) -> u64 {
    (2..=n).try_fold(1u64, u64::checked_mul).unwrap_or(u64::MAX)
}

/// Partial checks are only worth their cost when a real subtree hangs off
/// the node: below this many completions the engine just enumerates (the
/// leaves' full checks dominate either way, and skipping the hook keeps
/// small simulations at reference-engine speed).
const PRUNE_THRESHOLD: u64 = 8;

/// Runs one combo's DFS — the whole combo when `forced` is empty, or one
/// stolen frontier task: the DFS restricted to the pre-decoded choice at
/// each of the first `forced.len()` decisions, charging `task_charge` per
/// forced-level prune (see the module docs and [`ComboRun::maybe_absorb`]).
fn run_combo(
    ctx: &WorkerCtx<'_>,
    traces: &[&Trace],
    forced: Vec<usize>,
    task_charge: u64,
) -> std::result::Result<ComboOut, Stop> {
    let combined = build_combined(ctx.test, traces);

    let Some(rf_choices) = combined.rf_candidates() else {
        return Ok(ComboOut::default()); // some read unjustifiable
    };

    let locs: Vec<Loc> = combined.writes_by_loc.keys().cloned().collect();
    let co_writes: Vec<Vec<EventId>> = locs
        .iter()
        .map(|l| combined.writes_by_loc[l][1..].to_vec()) // element 0 is init
        .collect();
    let chains: Vec<Vec<EventId>> = locs.iter().map(|l| vec![combined.init_of[l]]).collect();

    // Subtree sizes for pruned-candidate accounting.
    // co_tail[li] = Π_{l ≥ li} m_l!  (co_tail[len] = 1)
    let mut co_tail = vec![1u64; locs.len() + 1];
    for li in (0..locs.len()).rev() {
        co_tail[li] = fact(co_writes[li].len() as u64).saturating_mul(co_tail[li + 1]);
    }
    // rf_tail[i] = Π_{j ≥ i} |rf_choices[j]| × Π_l m_l!  (rf_tail[len] = co_tail[0])
    let mut rf_tail = vec![co_tail[0]; rf_choices.len() + 1];
    for i in (0..rf_choices.len()).rev() {
        rf_tail[i] = (rf_choices[i].len() as u64).saturating_mul(rf_tail[i + 1]);
    }

    // The skeleton is built once per combo; rf/co mutate in place along the
    // DFS, the fixed relations are shared by every candidate.
    let execution = Execution {
        events: combined.events.clone(),
        po: combined.po.clone(),
        rf: Relation::new(),
        co: Relation::new(),
        rmw: combined.rmw.clone(),
        addr: combined.addr.clone(),
        data: combined.data.clone(),
        ctrl: combined.ctrl.clone(),
        outcome: Outcome::new(),
    };

    // Register part of the outcome: fixed per combo.
    let mut reg_outcome = Outcome::new();
    for key in ctx.observed {
        if let StateKey::Reg(t, r) = key {
            let v = combined
                .final_regs
                .get(&(*t, r.clone()))
                .cloned()
                .unwrap_or(Val::Int(0));
            reg_outcome.set(key.clone(), v);
        }
    }

    // Whether an allowed execution of this combo writes read-only memory:
    // a property of the combo's events, not of rf/co.
    let writes_readonly = !ctx.readonly.is_empty()
        && combined.events.iter().any(|e: &Event| {
            e.kind == EventKind::Write
                && !e.is_init()
                && e.loc.as_ref().is_some_and(|l| ctx.readonly.contains(l))
        });

    let loc_index: BTreeMap<&Loc, usize> =
        locs.iter().enumerate().map(|(i, l)| (l, i)).collect();

    // Decision-depth offset of each location's first co position (one
    // extra entry so the leaf depth is addressable too): the DFS depth of
    // co position (li, k) is reads.len() + co_offsets[li] + k.
    let mut co_offsets = Vec::with_capacity(co_writes.len() + 1);
    let mut off = 0usize;
    for w in &co_writes {
        co_offsets.push(off);
        off += w.len();
    }
    co_offsets.push(off);

    // Open the model's combo session on the skeleton: combo-constant
    // derived relations (loc/ext/int, annotation sets, …) are computed
    // once here and shared by every candidate below. Incremental sessions
    // additionally receive every DFS edge push/pop (see `ComboChecker`).
    let checker = ctx.model.combo_checker(&execution);
    let incremental = checker.incremental();

    let mut run = ComboRun {
        ctx,
        checker,
        incremental,
        reads: &combined.reads,
        rf_choices,
        rf_tail,
        co_writes,
        chains,
        co_tail,
        loc_index,
        co_offsets,
        forced,
        task_charge,
        absorbed: false,
        execution,
        reg_outcome,
        writes_readonly,
        out: ComboOut::default(),
        visits: 0,
    };
    run.assign_rf(0)?;
    Ok(run.out)
}

/// The per-combo DFS state: one mutable skeleton, extended and undone as
/// the builder walks rf choices and coherence prefixes.
struct ComboRun<'a, 'c> {
    ctx: &'a WorkerCtx<'a>,
    checker: Box<dyn crate::model::ComboChecker + 'a>,
    /// Whether `checker` opted into the per-edge incremental protocol.
    incremental: bool,
    reads: &'c [EventId],
    rf_choices: Vec<Vec<EventId>>,
    rf_tail: Vec<u64>,
    /// Per location, the non-init writes; permuted in place (swap DFS).
    co_writes: Vec<Vec<EventId>>,
    /// Per location, the current coherence chain (init write first).
    chains: Vec<Vec<EventId>>,
    co_tail: Vec<u64>,
    loc_index: BTreeMap<&'c Loc, usize>,
    /// Decision-depth offset of each location's first co position
    /// (`len + 1` entries; see [`run_combo`]).
    co_offsets: Vec<usize>,
    /// Forced decision prefix of a stolen frontier task, empty in combo
    /// mode: `forced[d]` is the choice index taken at DFS depth `d`.
    forced: Vec<usize>,
    /// Candidates under one frontier task (1 in combo mode): the charge
    /// for a prune at a forced level.
    task_charge: u64,
    /// Whether the forced prefix has been absorbed into the session.
    absorbed: bool,
    execution: Execution,
    reg_outcome: Outcome,
    writes_readonly: bool,
    out: ComboOut,
    visits: u64,
}

impl ComboRun<'_, '_> {
    /// Accounts `n` candidates (examined or pruned) against the global
    /// budget, and against this shard's tally (the per-combo DFS-size
    /// histogram sums shard tallies at merge).
    fn charge(&mut self, n: u64) -> std::result::Result<(), Stop> {
        self.out.charged = self.out.charged.saturating_add(n);
        let prev = self.ctx.shared.candidates.fetch_add(n, Ordering::Relaxed);
        let total = prev.saturating_add(n);
        if total > self.ctx.config.max_candidates {
            self.ctx.shared.abort.store(true, Ordering::Relaxed);
            return Err(Stop::Fatal(Error::Budget { steps: total }));
        }
        Ok(())
    }

    /// [`ComboRun::charge`] for a pruned subtree: the charge also lands in
    /// the shared pruned tally, so `SimResult::pruned_candidates` reports
    /// how much of the budget prunes covered. Always on (it feeds result
    /// accounting, not just telemetry) and deterministic by the same
    /// charge-sum argument as the budget itself.
    fn charge_pruned(&mut self, n: u64) -> std::result::Result<(), Stop> {
        self.ctx.shared.pruned.fetch_add(n, Ordering::Relaxed);
        self.charge(n)
    }

    /// Attribution for a prune of `n` candidates, recorded just before the
    /// cut is charged: which site fired (the assignment layer × whether
    /// the incremental session or a periodic recheck said `Forbidden`),
    /// and — when the session can name it — the first-violated rule.
    /// Rides the `ComboOut` shard, so the merged totals are charge sums:
    /// byte-identical across thread counts and task-splitting mode, like
    /// [`SimResult::pruned_candidates`] itself.
    fn attribute_prune(&mut self, n: u64, rf_site: bool) {
        match (rf_site, self.incremental) {
            (true, true) => self.out.prune_sites.rf_incremental += n,
            (true, false) => self.out.prune_sites.rf_recheck += n,
            (false, true) => self.out.prune_sites.co_incremental += n,
            (false, false) => self.out.prune_sites.co_recheck += n,
        }
        if let Some(rule) = self.checker.blame() {
            let rule = rule.to_string();
            *self.out.rule_prunes.entry(rule).or_insert(0) += n;
        }
    }

    /// Periodic deadline / cross-worker abort check.
    fn tick(&mut self) -> std::result::Result<(), Stop> {
        self.visits += 1;
        if !self.visits.is_multiple_of(256) {
            return Ok(());
        }
        if self.ctx.shared.abort.load(Ordering::Relaxed) {
            return Err(Stop::Cancelled);
        }
        if let Some(d) = self.ctx.deadline {
            if Instant::now() > d {
                self.ctx.shared.abort.store(true, Ordering::Relaxed);
                let limit_ms = self
                    .ctx
                    .config
                    .timeout
                    .map(|t| t.as_millis() as u64)
                    .unwrap_or(0);
                return Err(Stop::Fatal(Error::Timeout { limit_ms }));
            }
        }
        Ok(())
    }

    /// Folds the forced prefix into the model session the first time the
    /// DFS reaches the free region (depth = forced length): from here on
    /// the task is an ordinary combo DFS whose session was re-seeded from
    /// the split point, and the forced pushes are never popped (the task
    /// owns this `ComboRun`; nothing below ever unwinds past the split).
    fn maybe_absorb(&mut self, depth: usize) {
        if !self.absorbed && !self.forced.is_empty() && depth >= self.forced.len() {
            if self.incremental {
                self.checker.absorb();
            }
            self.absorbed = true;
        }
    }

    /// Stage 2: justify read `i`, then recurse; prune on partial verdicts.
    ///
    /// Incremental sessions see *every* edge (`push_rf`/`pop_rf`) and their
    /// verdict is free, so any `Forbidden` prunes regardless of subtree
    /// size; re-check sessions are only consulted when a subtree of at
    /// least [`PRUNE_THRESHOLD`] completions hangs off the node.
    fn assign_rf(&mut self, i: usize) -> std::result::Result<(), Stop> {
        self.maybe_absorb(i);
        if i == self.reads.len() {
            return self.assign_co(0, 0);
        }
        let r = self.reads[i];
        let subtree = self.rf_tail[i + 1];
        if i < self.forced.len() {
            // Stolen frontier: replay the one pre-decoded choice, with the
            // same verdict protocol the sequential loop body uses, so the
            // session and the prune decisions match the sequential DFS
            // exactly. A prune charges the per-task tail product — summed
            // over the sibling tasks replaying this prefix that equals
            // `subtree`, the sequential charge.
            let w = self.rf_choices[i][self.forced[i]];
            self.execution.rf.insert(w, r);
            let verdict = if self.incremental {
                self.checker.push_rf(&self.execution, w, r)
            } else if subtree >= PRUNE_THRESHOLD {
                self.checker.check_partial(&self.execution)
            } else {
                PartialVerdict::Undecided
            };
            return if verdict == PartialVerdict::Forbidden {
                self.attribute_prune(self.task_charge, true);
                self.charge_pruned(self.task_charge)
            } else {
                self.assign_rf(i + 1)
            };
        }
        for ci in 0..self.rf_choices[i].len() {
            let w = self.rf_choices[i][ci];
            self.execution.rf.insert(w, r);
            let verdict = if self.incremental {
                self.checker.push_rf(&self.execution, w, r)
            } else if subtree >= PRUNE_THRESHOLD {
                self.checker.check_partial(&self.execution)
            } else {
                PartialVerdict::Undecided
            };
            let res = if verdict == PartialVerdict::Forbidden {
                self.attribute_prune(subtree, true);
                self.charge_pruned(subtree)
            } else {
                self.assign_rf(i + 1)
            };
            if self.incremental {
                self.checker.pop_rf(&self.execution, w, r);
            }
            self.execution.rf.remove(w, r);
            res?;
        }
        Ok(())
    }

    /// Stage 3: extend location `li`'s coherence chain by one write
    /// (position `k`), lazily walking permutations with undo.
    fn assign_co(&mut self, li: usize, k: usize) -> std::result::Result<(), Stop> {
        if li == self.chains.len() {
            self.maybe_absorb(self.reads.len() + self.co_offsets[li]);
            return self.leaf();
        }
        let depth = self.reads.len() + self.co_offsets[li] + k;
        self.maybe_absorb(depth);
        let m = self.co_writes[li].len();
        if k == m {
            return self.assign_co(li + 1, 0);
        }
        if depth < self.forced.len() {
            // Stolen frontier: apply the pre-decoded swap so everything
            // below the split sees exactly the permutation prefix the
            // sequential DFS would have built; nothing is unwound.
            let pick = k + self.forced[depth];
            self.co_writes[li].swap(k, pick);
            let w = self.co_writes[li][k];
            for idx in 0..self.chains[li].len() {
                let p = self.chains[li][idx];
                self.execution.co.insert(p, w);
            }
            let verdict = if self.incremental {
                self.checker.push_co(&self.execution, &self.chains[li], w)
            } else {
                PartialVerdict::Undecided
            };
            self.chains[li].push(w);
            let subtree = fact((m - k - 1) as u64).saturating_mul(self.co_tail[li + 1]);
            let pruned = if self.incremental {
                verdict == PartialVerdict::Forbidden
            } else {
                subtree >= PRUNE_THRESHOLD
                    && self.checker.check_partial(&self.execution) == PartialVerdict::Forbidden
            };
            return if pruned {
                self.attribute_prune(self.task_charge, false);
                self.charge_pruned(self.task_charge)
            } else {
                self.assign_co(li, k + 1)
            };
        }
        for pick in k..m {
            self.co_writes[li].swap(k, pick);
            let w = self.co_writes[li][k];
            // Extend co transitively: every chain element precedes `w`.
            for idx in 0..self.chains[li].len() {
                let p = self.chains[li][idx];
                self.execution.co.insert(p, w);
            }
            let verdict = if self.incremental {
                self.checker.push_co(&self.execution, &self.chains[li], w)
            } else {
                PartialVerdict::Undecided
            };
            self.chains[li].push(w);
            let subtree = fact((m - k - 1) as u64).saturating_mul(self.co_tail[li + 1]);
            let pruned = if self.incremental {
                verdict == PartialVerdict::Forbidden
            } else {
                subtree >= PRUNE_THRESHOLD
                    && self.checker.check_partial(&self.execution) == PartialVerdict::Forbidden
            };
            let res = if pruned {
                self.attribute_prune(subtree, false);
                self.charge_pruned(subtree)
            } else {
                self.assign_co(li, k + 1)
            };
            self.chains[li].pop();
            if self.incremental {
                self.checker.pop_co(&self.execution, &self.chains[li], w);
            }
            for idx in 0..self.chains[li].len() {
                let p = self.chains[li][idx];
                self.execution.co.remove(p, w);
            }
            self.co_writes[li].swap(k, pick);
            res?;
        }
        Ok(())
    }

    /// A complete candidate: judge it and record the outcome if allowed.
    fn leaf(&mut self) -> std::result::Result<(), Stop> {
        self.charge(1)?;
        self.tick()?;

        // Outcome: registers (fixed) + observed locations (co-final).
        let mut outcome = self.reg_outcome.clone();
        for key in self.ctx.observed {
            if let StateKey::Loc(l) = key {
                let v = match self.loc_index.get(l) {
                    Some(&li) => {
                        let w = *self.chains[li].last().expect("init present");
                        self.execution.events[w.index()]
                            .val
                            .clone()
                            .expect("writes have values")
                    }
                    None => self.ctx.test.init_of(l),
                };
                outcome.set(key.clone(), v);
            }
        }
        self.execution.outcome = outcome;

        match self.checker.check(&self.execution) {
            Verdict::Allowed { flags } => {
                self.out.allowed += 1;
                self.out.flags.extend(flags);
                if self.writes_readonly {
                    self.out.crashed = true;
                }
                self.out.outcomes.insert(self.execution.outcome.clone());
                if self.ctx.config.keep_executions
                    && self.out.executions.len() < self.ctx.config.max_kept
                {
                    self.out.executions.push(self.execution.clone());
                }
            }
            Verdict::Forbidden { rule } => {
                // First-violated-rule attribution: a pure function of the
                // candidate (the checker walks its rules in source order),
                // so the merged tallies are thread-invariant — the visited
                // leaf set is.
                *self.out.rule_leaves.entry(rule).or_insert(0) += 1;
            }
        }
        Ok(())
    }
}

/// Combined event graph for one trace combination (rf/co not yet chosen).
///
/// Built **once** per combo by [`build_combined`]; the dependency
/// relations are shared (immutably) by every rf/co candidate of the combo.
pub(crate) struct Combined {
    pub(crate) events: Vec<Event>,
    /// Program order: transitive, intra-thread, init writes excluded —
    /// built in one pass over the per-thread event chains.
    pub(crate) po: Relation,
    pub(crate) rmw: Relation,
    pub(crate) addr: Relation,
    pub(crate) data: Relation,
    pub(crate) ctrl: Relation,
    /// Non-init read event ids, in id order.
    pub(crate) reads: Vec<EventId>,
    /// Writes per location (init write first), in id order.
    pub(crate) writes_by_loc: BTreeMap<Loc, Vec<EventId>>,
    /// Init write id per location.
    pub(crate) init_of: BTreeMap<Loc, EventId>,
    /// Final register file per thread.
    pub(crate) final_regs: BTreeMap<(ThreadId, Reg), Val>,
}

impl Combined {
    /// rf candidates per read: same location, same value, not po-later in
    /// the same thread (reading from one's own future violates coherence
    /// in every bundled model, so filtering it statically is sound).
    ///
    /// Returns `None` when some read has no justifying write — the combo
    /// contributes no executions at all.
    pub(crate) fn rf_candidates(&self) -> Option<Vec<Vec<EventId>>> {
        let mut rf_choices: Vec<Vec<EventId>> = Vec::with_capacity(self.reads.len());
        let empty = Vec::new();
        for &r in &self.reads {
            let re = &self.events[r.index()];
            let loc = re.loc.as_ref().expect("reads have locations");
            let val = re.val.as_ref().expect("reads have values");
            let cands: Vec<EventId> = self
                .writes_by_loc
                .get(loc)
                .unwrap_or(&empty)
                .iter()
                .copied()
                .filter(|&w| {
                    let we = &self.events[w.index()];
                    if we.val.as_ref() != Some(val) {
                        return false;
                    }
                    // Exclude same-thread po-later-or-equal writes.
                    !(we.thread == re.thread && we.po_index >= re.po_index)
                })
                .collect();
            if cands.is_empty() {
                return None;
            }
            rf_choices.push(cands);
        }
        Some(rf_choices)
    }
}

/// Builds the combo's shared event graph: events, one-pass transitive
/// `po`, dependency relations, and the read/write indices.
pub(crate) fn build_combined(test: &LitmusTest, traces: &[&Trace]) -> Combined {
    let mut events = Vec::new();
    let mut init_of = BTreeMap::new();
    let mut writes_by_loc: BTreeMap<Loc, Vec<EventId>> = BTreeMap::new();

    for (i, d) in test.locs.iter().enumerate() {
        let id = EventId(events.len() as u32);
        events.push(Event {
            id,
            thread: INIT_THREAD,
            po_index: i,
            kind: EventKind::Write,
            loc: Some(d.loc.clone()),
            val: Some(d.init.clone()),
            annot: AnnotSet::one(Annot::Init),
        });
        init_of.insert(d.loc.clone(), id);
        writes_by_loc.insert(d.loc.clone(), vec![id]);
    }

    let mut rmw = Relation::new();
    let mut addr = Relation::new();
    let mut data = Relation::new();
    let mut ctrl = Relation::new();
    let mut reads = Vec::new();
    let mut final_regs = BTreeMap::new();
    let mut po_chains: Vec<Vec<EventId>> = Vec::with_capacity(traces.len());

    for (tindex, trace) in traces.iter().enumerate() {
        let thread = ThreadId(tindex as u8);
        let base = events.len() as u32;
        let gid = |local: usize| EventId(base + local as u32);
        let mut chain = Vec::with_capacity(trace.events.len());
        for (j, te) in trace.events.iter().enumerate() {
            let id = gid(j);
            events.push(Event {
                id,
                thread,
                po_index: j,
                kind: te.kind,
                loc: te.loc.clone(),
                val: te.val.clone(),
                annot: te.annot,
            });
            match te.kind {
                EventKind::Read => reads.push(id),
                EventKind::Write => {
                    let loc = te.loc.clone().expect("writes have locations");
                    writes_by_loc.entry(loc).or_default().push(id);
                }
                EventKind::Fence => {}
            }
            chain.push(id);
        }
        po_chains.push(chain);
        for &(r, w) in &trace.rmw_pairs {
            rmw.insert(gid(r), gid(w));
        }
        for &(a, b) in &trace.addr_deps {
            addr.insert(gid(a), gid(b));
        }
        for &(a, b) in &trace.data_deps {
            data.insert(gid(a), gid(b));
        }
        for &(a, b) in &trace.ctrl_deps {
            ctrl.insert(gid(a), gid(b));
        }
        for (r, v) in &trace.final_regs {
            final_regs.insert((thread, r.clone()), v.clone());
        }
    }

    // Transitive program order, one bulk construction for all threads.
    let po = Relation::total_order(po_chains.iter().map(Vec::as_slice));

    Combined {
        events,
        po,
        rmw,
        addr,
        data,
        ctrl,
        reads,
        writes_by_loc,
        init_of,
        final_regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AllowAll, CoherenceOnly, SeqCstRef};
    use crate::reference::simulate_reference;
    use telechat_litmus::parse_c11;

    fn sim(src: &str, model: &dyn ConsistencyModel) -> SimResult {
        let test = parse_c11(src).unwrap();
        simulate(&test, model, &SimConfig::default()).unwrap()
    }

    const SB: &str = r#"
C11 "SB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
"#;

    #[test]
    fn sb_has_four_outcomes_unconstrained() {
        let r = sim(SB, &AllowAll);
        // (r0,r1) in {0,1}²
        assert_eq!(r.outcomes.len(), 4);
        assert!(r.candidates >= 4);
    }

    #[test]
    fn sc_forbids_sb_weak_outcome() {
        let test = parse_c11(SB).unwrap();
        let r = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 3, "{}", r.outcomes);
        assert!(!test.condition.holds(&r.outcomes));
        // Coherence-only allows all four.
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&r.outcomes));
    }

    const LB: &str = r#"
C11 "LB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r0=1)
"#;

    #[test]
    fn lb_weak_outcome_needs_weak_model() {
        let test = parse_c11(LB).unwrap();
        let sc = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert!(!test.condition.holds(&sc.outcomes), "SC forbids LB");
        assert_eq!(sc.outcomes.len(), 3);
        let weak = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&weak.outcomes), "coherence allows LB");
        assert_eq!(weak.outcomes.len(), 4);
    }

    #[test]
    fn coherence_corr() {
        // CoRR: two reads of the same location in one thread must not see
        // values in anti-coherence order.
        let src = r#"
C11 "CoRR"
{ x = 0; }
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\ P1:r1=0)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(
            !test.condition.holds(&r.outcomes),
            "new-then-old read is anti-coherent: {}",
            r.outcomes
        );
        // But with no model at all the candidate exists.
        let r = simulate(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&r.outcomes));
    }

    #[test]
    fn rmw_atomicity_enforced() {
        // Two parallel fetch_adds must not both read 0 (one must see the
        // other) — the classic increment-atomicity test.
        let src = r#"
C11 "2+FA"
{ x = 0; }
P0 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(
            !test.condition.holds(&r.outcomes),
            "atomicity violated: {}",
            r.outcomes
        );
        // Final value must be 2 in every execution where both RMWs ran.
        let obs = simulate(
            &parse_c11(
                r#"
C11 "2+FA+final"
{ x = 0; }
P0 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
forall ([x]=2)
"#,
            )
            .unwrap(),
            &CoherenceOnly,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(obs.outcomes.len(), 1);
    }

    #[test]
    fn observed_location_final_values() {
        let src = r#"
C11 "finals"
{ x = 0; }
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
exists (x=1 \/ x=2)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        // Both coherence orders are allowed: final x ∈ {1, 2}.
        assert_eq!(r.outcomes.len(), 2, "{}", r.outcomes);
        assert!(test.condition.holds(&r.outcomes));
    }

    #[test]
    fn crash_detection_on_const_write() {
        let src = r#"
C11 "const-write"
{ const c = 5; }
P0 (atomic_int* c) {
  atomic_store_explicit(c, 1, memory_order_relaxed);
}
exists (true)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert!(r.crashed, "store to const location must flag a crash");
    }

    #[test]
    fn budget_error_on_tiny_candidate_limit() {
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig {
            max_candidates: 2,
            ..SimConfig::default()
        };
        let err = simulate(&test, &AllowAll, &cfg).unwrap_err();
        assert!(err.is_exhaustion());
    }

    #[test]
    fn deterministic_results() {
        let test = parse_c11(SB).unwrap();
        let a = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        let b = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn keeps_executions_when_asked() {
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig::default().keeping_executions();
        let r = simulate(&test, &SeqCstRef, &cfg).unwrap();
        assert_eq!(r.executions.len() as u64, r.allowed.min(64));
        for x in &r.executions {
            assert!(!x.rf.is_empty());
        }
    }

    #[test]
    fn matches_reference_engine_exactly() {
        // The staged/pruned engine must agree with the naive oracle on
        // outcomes, candidate accounting, allowed counts and flags.
        for model in [&AllowAll as &dyn ConsistencyModel, &SeqCstRef, &CoherenceOnly] {
            for src in [SB, LB] {
                let test = parse_c11(src).unwrap();
                let cfg = SimConfig::default();
                let new = simulate(&test, model, &cfg).unwrap();
                let old = simulate_reference(&test, model, &cfg).unwrap();
                assert_eq!(new.outcomes, old.outcomes, "{} under {}", test.name, model.name());
                assert_eq!(new.candidates, old.candidates, "{}", model.name());
                assert_eq!(new.allowed, old.allowed, "{}", model.name());
                assert_eq!(new.flags, old.flags);
                assert_eq!(new.crashed, old.crashed);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let test = parse_c11(SB).unwrap();
        let base = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        for threads in [2, 4, 8] {
            let cfg = SimConfig::default().with_threads(threads);
            let r = simulate(&test, &SeqCstRef, &cfg).unwrap();
            assert_eq!(r.outcomes, base.outcomes, "threads={threads}");
            assert_eq!(r.candidates, base.candidates, "threads={threads}");
            assert_eq!(r.allowed, base.allowed, "threads={threads}");
        }
    }

    /// Three same-value writers to one location plus a reader: a single
    /// trace combo whose swap-DFS has decision arities [3, 3, 2, 1]
    /// (one rf choice of 3, then co positions 3·2·1), so intra-combo
    /// work stealing splits mid-coherence rather than only at rf.
    const WIDE_CO: &str = r#"
C11 "WIDE-CO"
{ x = 0; }
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P2 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P3 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P3:r0=1)
"#;

    #[test]
    fn work_stealing_byte_identical_results() {
        // Intra-combo work stealing (threads > combos) must reproduce the
        // sequential run byte for byte: outcomes, candidate accounting,
        // flags, crash bit AND the kept-execution list in order.
        for model in [&AllowAll as &dyn ConsistencyModel, &SeqCstRef, &CoherenceOnly] {
            for src in [SB, LB, WIDE_CO] {
                let test = parse_c11(src).unwrap();
                let base_cfg = SimConfig::default().keeping_executions();
                let base = simulate(&test, model, &base_cfg).unwrap();
                for threads in [2, 4, 8] {
                    let cfg = base_cfg.clone().with_threads(threads);
                    let r = simulate(&test, model, &cfg).unwrap();
                    let tag = format!("{} under {} threads={threads}", test.name, model.name());
                    assert_eq!(r.outcomes, base.outcomes, "{tag}");
                    assert_eq!(r.candidates, base.candidates, "{tag}");
                    assert_eq!(r.allowed, base.allowed, "{tag}");
                    assert_eq!(r.flags, base.flags, "{tag}");
                    assert_eq!(r.crashed, base.crashed, "{tag}");
                    assert_eq!(r.executions, base.executions, "{tag}");
                }
            }
        }
    }

    #[test]
    fn work_stealing_runs_no_full_traversals() {
        // Stolen frontiers replay their forced prefix and absorb it into
        // the session baseline — still zero full toposort traversals at
        // every thread count, including mid-co steal points (WIDE_CO).
        for src in [SB, LB, WIDE_CO] {
            let test = parse_c11(src).unwrap();
            for model in [&SeqCstRef as &dyn ConsistencyModel, &CoherenceOnly] {
                for threads in [1, 2, 4] {
                    let cfg = SimConfig::default().with_threads(threads);
                    let r = simulate(&test, model, &cfg).unwrap();
                    assert_eq!(
                        r.full_traversals, 0,
                        "full traversal during {} enumeration of {} at threads={threads}",
                        model.name(),
                        test.name
                    );
                }
            }
        }
    }

    #[test]
    fn po_is_transitive_with_pinned_edge_count() {
        // A thread of n events carries exactly n(n-1)/2 transitive po
        // edges; init writes carry none. Pins the one-pass construction.
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig::default();
        let traces = interpret_all_traces(&test, &cfg).unwrap();
        let combo: Vec<&Trace> = traces.iter().map(|t| &t[0]).collect();
        let combined = build_combined(&test, &combo);
        let expected: usize = combo
            .iter()
            .map(|t| t.events.len() * (t.events.len() - 1) / 2)
            .sum();
        assert_eq!(combined.po.len(), expected);
        // Transitivity: every composed edge is already present.
        let closed = combined.po.transitive_closure();
        assert_eq!(closed, combined.po);
    }

    #[test]
    fn incremental_sessions_run_no_full_traversals() {
        // The acceptance pin for the incremental acyclicity state: with the
        // built-in models' incremental combo sessions, an entire simulation
        // runs zero full Kahn/toposort traversals — partial checks AND leaf
        // checks are answered from per-edge reachability state. (The
        // counter is thread-local; threads = 1 keeps all work here.)
        for src in [SB, LB] {
            let test = parse_c11(src).unwrap();
            for model in [&SeqCstRef as &dyn ConsistencyModel, &CoherenceOnly] {
                let before = crate::rel::full_traversals();
                simulate(&test, model, &SimConfig::default()).unwrap();
                assert_eq!(
                    crate::rel::full_traversals(),
                    before,
                    "full traversal during {} enumeration of {}",
                    model.name(),
                    test.name
                );
            }
        }
    }

    #[test]
    fn pruning_accounts_skipped_candidates() {
        // Under SeqCstRef (which prunes) the candidate count must still
        // equal the exhaustive product — pruning trades time, not
        // accounting.
        let test = parse_c11(LB).unwrap();
        let with_pruning = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        let exhaustive = simulate(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert_eq!(with_pruning.candidates, exhaustive.candidates);
    }
}
