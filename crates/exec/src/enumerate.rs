//! Candidate-execution enumeration and the top-level simulator.
//!
//! This is the herd-equivalent core (paper §II-A): enumerate every candidate
//! execution of a litmus test — combinations of per-thread traces, a
//! reads-from assignment and a per-location coherence order — filter them
//! through a consistency model, and collect the outcomes of the allowed
//! ones.
//!
//! The enumeration cost is the product of per-thread trace counts, rf
//! choices per read and coherence permutations per location. That product is
//! what explodes on unoptimised compiled tests (paper §IV-E / Fig. 11) and
//! what the Téléchat `s2l` optimiser tames.

use crate::config::{SimConfig, SimResult};
use crate::event::{Event, EventKind, Execution, INIT_THREAD};
use crate::model::ConsistencyModel;
use crate::rel::Relation;
use crate::trace::{interpret_thread, value_pools, InterpBudget, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use telechat_common::{
    Annot, AnnotSet, Error, EventId, Loc, Outcome, OutcomeSet, Reg, Result, StateKey, ThreadId,
    Val,
};
use telechat_litmus::LitmusTest;

/// Simulates `test` under `model` (the paper's `herd(P, M)`).
///
/// # Errors
///
/// * [`Error::Timeout`] / [`Error::Budget`] on state explosion — the
///   behaviour the paper reports for unoptimised compiled tests;
/// * [`Error::IllFormed`] if the test is structurally invalid.
pub fn simulate(
    test: &LitmusTest,
    model: &dyn ConsistencyModel,
    config: &SimConfig,
) -> Result<SimResult> {
    test.validate()?;
    let start = Instant::now();
    let deadline = config.timeout.map(|t| start + t);
    let mut budget = InterpBudget::new(config.max_steps);

    let pools = value_pools(test, config.unroll, config.max_pool_iters, &mut budget)?;
    let mut thread_traces: Vec<Vec<Trace>> = Vec::with_capacity(test.threads.len());
    for t in 0..test.threads.len() {
        let mut traces = interpret_thread(
            test,
            ThreadId(t as u8),
            &pools,
            config.unroll,
            config.excl_fail_paths,
            &mut budget,
        )?;
        traces.retain(|tr| tr.complete);
        traces.dedup();
        thread_traces.push(traces);
    }

    let observed = test.observed_keys();
    let readonly: BTreeSet<Loc> = test
        .locs
        .iter()
        .filter(|d| d.readonly)
        .map(|d| d.loc.clone())
        .collect();

    let mut result = SimResult {
        outcomes: OutcomeSet::new(),
        candidates: 0,
        allowed: 0,
        flags: BTreeSet::new(),
        crashed: false,
        executions: Vec::new(),
        elapsed: start.elapsed(),
    };

    // If any thread has no complete trace there are no executions.
    if thread_traces.iter().any(Vec::is_empty) {
        result.elapsed = start.elapsed();
        return Ok(result);
    }

    // Odometer over per-thread trace choices.
    let mut combo: Vec<usize> = vec![0; thread_traces.len()];
    loop {
        let traces: Vec<&Trace> = combo
            .iter()
            .enumerate()
            .map(|(t, &i)| &thread_traces[t][i])
            .collect();
        enumerate_combo(
            test, &traces, model, config, &observed, &readonly, deadline, &mut result,
        )?;

        // Advance the odometer.
        let mut t = 0;
        loop {
            if t == combo.len() {
                result.elapsed = start.elapsed();
                return Ok(result);
            }
            combo[t] += 1;
            if combo[t] < thread_traces[t].len() {
                break;
            }
            combo[t] = 0;
            t += 1;
        }
    }
}

/// Combined event graph for one trace combination (rf/co not yet chosen).
struct Combined {
    events: Vec<Event>,
    po: Relation,
    rmw: Relation,
    addr: Relation,
    data: Relation,
    ctrl: Relation,
    /// Non-init read event ids, in id order.
    reads: Vec<EventId>,
    /// Writes per location (init write first), in id order.
    writes_by_loc: BTreeMap<Loc, Vec<EventId>>,
    /// Init write id per location.
    init_of: BTreeMap<Loc, EventId>,
    /// Final register file per thread.
    final_regs: BTreeMap<(ThreadId, Reg), Val>,
}

fn build_combined(test: &LitmusTest, traces: &[&Trace]) -> Combined {
    let mut events = Vec::new();
    let mut init_of = BTreeMap::new();
    let mut writes_by_loc: BTreeMap<Loc, Vec<EventId>> = BTreeMap::new();

    for (i, d) in test.locs.iter().enumerate() {
        let id = EventId(events.len() as u32);
        events.push(Event {
            id,
            thread: INIT_THREAD,
            po_index: i,
            kind: EventKind::Write,
            loc: Some(d.loc.clone()),
            val: Some(d.init.clone()),
            annot: AnnotSet::one(Annot::Init),
        });
        init_of.insert(d.loc.clone(), id);
        writes_by_loc.insert(d.loc.clone(), vec![id]);
    }

    let mut po = Relation::new();
    let mut rmw = Relation::new();
    let mut addr = Relation::new();
    let mut data = Relation::new();
    let mut ctrl = Relation::new();
    let mut reads = Vec::new();
    let mut final_regs = BTreeMap::new();

    for (tindex, trace) in traces.iter().enumerate() {
        let thread = ThreadId(tindex as u8);
        let base = events.len() as u32;
        let gid = |local: usize| EventId(base + local as u32);
        for (j, te) in trace.events.iter().enumerate() {
            let id = gid(j);
            events.push(Event {
                id,
                thread,
                po_index: j,
                kind: te.kind,
                loc: te.loc.clone(),
                val: te.val.clone(),
                annot: te.annot,
            });
            match te.kind {
                EventKind::Read => reads.push(id),
                EventKind::Write => {
                    let loc = te.loc.clone().expect("writes have locations");
                    writes_by_loc.entry(loc).or_default().push(id);
                }
                EventKind::Fence => {}
            }
            // Transitive program order within the thread.
            for k in 0..j {
                po.insert(gid(k), id);
            }
        }
        for &(r, w) in &trace.rmw_pairs {
            rmw.insert(gid(r), gid(w));
        }
        for &(a, b) in &trace.addr_deps {
            addr.insert(gid(a), gid(b));
        }
        for &(a, b) in &trace.data_deps {
            data.insert(gid(a), gid(b));
        }
        for &(a, b) in &trace.ctrl_deps {
            ctrl.insert(gid(a), gid(b));
        }
        for (r, v) in &trace.final_regs {
            final_regs.insert((thread, r.clone()), v.clone());
        }
    }

    Combined {
        events,
        po,
        rmw,
        addr,
        data,
        ctrl,
        reads,
        writes_by_loc,
        init_of,
        final_regs,
    }
}

/// All permutations of `items` (Heap's algorithm, deterministic order).
fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    permute(&mut work, 0, &mut out);
    out
}

fn permute(work: &mut Vec<EventId>, k: usize, out: &mut Vec<Vec<EventId>>) {
    if k == work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute(work, k + 1, out);
        work.swap(k, i);
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_combo(
    test: &LitmusTest,
    traces: &[&Trace],
    model: &dyn ConsistencyModel,
    config: &SimConfig,
    observed: &BTreeSet<StateKey>,
    readonly: &BTreeSet<Loc>,
    deadline: Option<Instant>,
    result: &mut SimResult,
) -> Result<()> {
    let combined = build_combined(test, traces);

    // rf candidates per read: same location, same value, not po-later in the
    // same thread (reading from one's own future violates coherence in every
    // bundled model, so pruning it early is sound).
    let mut rf_choices: Vec<Vec<EventId>> = Vec::with_capacity(combined.reads.len());
    for &r in &combined.reads {
        let re = &combined.events[r.index()];
        let loc = re.loc.clone().expect("reads have locations");
        let val = re.val.clone().expect("reads have values");
        let empty = Vec::new();
        let cands: Vec<EventId> = combined
            .writes_by_loc
            .get(&loc)
            .unwrap_or(&empty)
            .iter()
            .copied()
            .filter(|&w| {
                let we = &combined.events[w.index()];
                if we.val.as_ref() != Some(&val) {
                    return false;
                }
                // Exclude same-thread po-later-or-equal writes.
                !(we.thread == re.thread && we.po_index >= re.po_index)
            })
            .collect();
        if cands.is_empty() {
            return Ok(()); // read unjustifiable: no execution from this combo
        }
        rf_choices.push(cands);
    }

    // Coherence permutations per location (non-init writes).
    let locs: Vec<Loc> = combined.writes_by_loc.keys().cloned().collect();
    let mut co_choices: Vec<Vec<Vec<EventId>>> = Vec::with_capacity(locs.len());
    for loc in &locs {
        let writes = &combined.writes_by_loc[loc];
        co_choices.push(permutations(&writes[1..])); // element 0 is init
    }

    // The execution skeleton is fixed for the combo; rf/co/outcome vary.
    let mut execution = Execution {
        events: combined.events.clone(),
        po: combined.po.clone(),
        rf: Relation::new(),
        co: Relation::new(),
        rmw: combined.rmw.clone(),
        addr: combined.addr.clone(),
        data: combined.data.clone(),
        ctrl: combined.ctrl.clone(),
        outcome: Outcome::new(),
    };

    // Pre-compute the register part of the outcome (fixed per combo).
    let mut reg_outcome = Outcome::new();
    for key in observed {
        if let StateKey::Reg(t, r) = key {
            let v = combined
                .final_regs
                .get(&(*t, r.clone()))
                .cloned()
                .unwrap_or(Val::Int(0));
            reg_outcome.set(key.clone(), v);
        }
    }

    let mut rf_odo = vec![0usize; rf_choices.len()];
    loop {
        // Build rf for this choice.
        let mut rf = Relation::new();
        for (i, &r) in combined.reads.iter().enumerate() {
            rf.insert(rf_choices[i][rf_odo[i]], r);
        }

        let mut co_odo = vec![0usize; co_choices.len()];
        loop {
            result.candidates += 1;
            if result.candidates > config.max_candidates {
                return Err(Error::Budget {
                    steps: result.candidates,
                });
            }
            if result.candidates % 256 == 0 {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        let limit_ms = config
                            .timeout
                            .map(|t| t.as_millis() as u64)
                            .unwrap_or(0);
                        return Err(Error::Timeout { limit_ms });
                    }
                }
            }

            // Build co: per location, init first then the chosen permutation,
            // transitively closed.
            let mut co = Relation::new();
            let mut last_write: BTreeMap<&Loc, EventId> = BTreeMap::new();
            for (li, loc) in locs.iter().enumerate() {
                let perm = &co_choices[li][co_odo[li]];
                let init = combined.init_of[loc];
                let mut chain: Vec<EventId> = Vec::with_capacity(perm.len() + 1);
                chain.push(init);
                chain.extend(perm.iter().copied());
                for a in 0..chain.len() {
                    for b in (a + 1)..chain.len() {
                        co.insert(chain[a], chain[b]);
                    }
                }
                last_write.insert(loc, *chain.last().expect("non-empty"));
            }

            execution.rf = rf.clone();
            execution.co = co;

            // Outcome: registers (fixed) + observed locations (co-final).
            let mut outcome = reg_outcome.clone();
            for key in observed {
                if let StateKey::Loc(l) = key {
                    let v = last_write
                        .get(l)
                        .map(|w| {
                            execution.events[w.index()]
                                .val
                                .clone()
                                .expect("writes have values")
                        })
                        .unwrap_or_else(|| test.init_of(l));
                    outcome.set(key.clone(), v);
                }
            }
            execution.outcome = outcome;

            match model.check(&execution) {
                crate::model::Verdict::Allowed { flags } => {
                    result.allowed += 1;
                    result.flags.extend(flags);
                    if !readonly.is_empty()
                        && execution.events.iter().any(|e| {
                            e.kind == EventKind::Write
                                && !e.is_init()
                                && e.loc.as_ref().is_some_and(|l| readonly.contains(l))
                        })
                    {
                        result.crashed = true;
                    }
                    result.outcomes.insert(execution.outcome.clone());
                    if config.keep_executions && result.executions.len() < config.max_kept {
                        result.executions.push(execution.clone());
                    }
                }
                crate::model::Verdict::Forbidden { .. } => {}
            }

            // Advance co odometer.
            let mut li = 0;
            loop {
                if li == co_choices.len() {
                    break;
                }
                co_odo[li] += 1;
                if co_odo[li] < co_choices[li].len() {
                    break;
                }
                co_odo[li] = 0;
                li += 1;
            }
            if li == co_choices.len() {
                break;
            }
        }

        // Advance rf odometer.
        let mut i = 0;
        loop {
            if i == rf_choices.len() {
                return Ok(());
            }
            rf_odo[i] += 1;
            if rf_odo[i] < rf_choices[i].len() {
                break;
            }
            rf_odo[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AllowAll, CoherenceOnly, SeqCstRef};
    use telechat_litmus::parse_c11;

    fn sim(src: &str, model: &dyn ConsistencyModel) -> SimResult {
        let test = parse_c11(src).unwrap();
        simulate(&test, model, &SimConfig::default()).unwrap()
    }

    const SB: &str = r#"
C11 "SB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
"#;

    #[test]
    fn sb_has_four_outcomes_unconstrained() {
        let r = sim(SB, &AllowAll);
        // (r0,r1) in {0,1}²
        assert_eq!(r.outcomes.len(), 4);
        assert!(r.candidates >= 4);
    }

    #[test]
    fn sc_forbids_sb_weak_outcome() {
        let test = parse_c11(SB).unwrap();
        let r = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 3, "{}", r.outcomes);
        assert!(!test.condition.holds(&r.outcomes));
        // Coherence-only allows all four.
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&r.outcomes));
    }

    const LB: &str = r#"
C11 "LB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r0=1)
"#;

    #[test]
    fn lb_weak_outcome_needs_weak_model() {
        let test = parse_c11(LB).unwrap();
        let sc = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert!(!test.condition.holds(&sc.outcomes), "SC forbids LB");
        assert_eq!(sc.outcomes.len(), 3);
        let weak = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&weak.outcomes), "coherence allows LB");
        assert_eq!(weak.outcomes.len(), 4);
    }

    #[test]
    fn coherence_corr() {
        // CoRR: two reads of the same location in one thread must not see
        // values in anti-coherence order.
        let src = r#"
C11 "CoRR"
{ x = 0; }
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=1 /\ P1:r1=0)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(
            !test.condition.holds(&r.outcomes),
            "new-then-old read is anti-coherent: {}",
            r.outcomes
        );
        // But with no model at all the candidate exists.
        let r = simulate(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert!(test.condition.holds(&r.outcomes));
    }

    #[test]
    fn rmw_atomicity_enforced() {
        // Two parallel fetch_adds must not both read 0 (one must see the
        // other) — the classic increment-atomicity test.
        let src = r#"
C11 "2+FA"
{ x = 0; }
P0 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &CoherenceOnly, &SimConfig::default()).unwrap();
        assert!(
            !test.condition.holds(&r.outcomes),
            "atomicity violated: {}",
            r.outcomes
        );
        // Final value must be 2 in every execution where both RMWs ran.
        let obs = simulate(
            &parse_c11(
                r#"
C11 "2+FA+final"
{ x = 0; }
P0 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_fetch_add_explicit(x, 1, memory_order_relaxed);
}
forall ([x]=2)
"#,
            )
            .unwrap(),
            &CoherenceOnly,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(obs.outcomes.len(), 1);
    }

    #[test]
    fn observed_location_final_values() {
        let src = r#"
C11 "finals"
{ x = 0; }
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  atomic_store_explicit(x, 2, memory_order_relaxed);
}
exists (x=1 \/ x=2)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        // Both coherence orders are allowed: final x ∈ {1, 2}.
        assert_eq!(r.outcomes.len(), 2, "{}", r.outcomes);
        assert!(test.condition.holds(&r.outcomes));
    }

    #[test]
    fn crash_detection_on_const_write() {
        let src = r#"
C11 "const-write"
{ const c = 5; }
P0 (atomic_int* c) {
  atomic_store_explicit(c, 1, memory_order_relaxed);
}
exists (true)
"#;
        let test = parse_c11(src).unwrap();
        let r = simulate(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert!(r.crashed, "store to const location must flag a crash");
    }

    #[test]
    fn budget_error_on_tiny_candidate_limit() {
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig {
            max_candidates: 2,
            ..SimConfig::default()
        };
        let err = simulate(&test, &AllowAll, &cfg).unwrap_err();
        assert!(err.is_exhaustion());
    }

    #[test]
    fn deterministic_results() {
        let test = parse_c11(SB).unwrap();
        let a = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        let b = simulate(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn keeps_executions_when_asked() {
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig::default().keeping_executions();
        let r = simulate(&test, &SeqCstRef, &cfg).unwrap();
        assert_eq!(r.executions.len() as u64, r.allowed.min(64));
        for x in &r.executions {
            assert!(!x.rf.is_empty());
        }
    }
}
