//! A herd-style axiomatic simulator for litmus tests.
//!
//! Given a [`telechat_litmus::LitmusTest`] and a [`ConsistencyModel`], the
//! [`simulate`] function enumerates every candidate execution — per-thread
//! traces × reads-from assignments × coherence orders — filters them through
//! the model and collects the outcomes of the allowed executions (paper
//! §II-A, Def. II.1/II.2).
//!
//! # Engine architecture
//!
//! [`simulate`] runs the **incremental enumeration engine** (module
//! [`enumerate`]): per trace combination it builds the event graph and
//! dependency relations once, then walks reads-from assignments and
//! lazily-generated coherence orders as a staged DFS, consulting the
//! model's [`ConsistencyModel::check_partial`] fast-reject hook to prune
//! entire subtrees before they are materialised. Trace combinations are
//! sharded across [`SimConfig::threads`] workers with a deterministic
//! merge, so outcome sets are identical for every thread count. The naive
//! generate-then-filter enumerator is retained in [`reference`] as the
//! differential-testing oracle ([`simulate_reference`]).
//!
//! # Example
//!
//! ```
//! use telechat_exec::{simulate, SeqCstRef, SimConfig};
//! use telechat_litmus::parse_c11;
//!
//! let test = parse_c11(r#"
//! C11 "SB"
//! { x = 0; y = 0; }
//! P0 (atomic_int* x, atomic_int* y) {
//!   atomic_store_explicit(x, 1, memory_order_relaxed);
//!   int r0 = atomic_load_explicit(y, memory_order_relaxed);
//! }
//! P1 (atomic_int* x, atomic_int* y) {
//!   atomic_store_explicit(y, 1, memory_order_relaxed);
//!   int r0 = atomic_load_explicit(x, memory_order_relaxed);
//! }
//! exists (P0:r0=0 /\ P1:r0=0)
//! "#)?;
//! let result = simulate(&test, &SeqCstRef, &SimConfig::default())?;
//! assert!(!test.condition.holds(&result.outcomes)); // SC forbids SB
//! # Ok::<(), telechat_common::Error>(())
//! ```

/// Revision counter of the simulation engine's *observable semantics*.
///
/// The persistent campaign store (`telechat::persist`) stamps this into
/// every log file it writes: a store recorded under a different revision is
/// discarded wholesale on open, so an engine change can never replay stale
/// simulation results as fresh ones. Bump it whenever a change could alter
/// any simulation outcome, accounting field or error — candidate counting,
/// outcome collection, model evaluation order — and leave it alone for
/// pure-performance work that is pinned byte-identical.
pub const ENGINE_REVISION: u64 = 1;

pub mod config;
pub mod enumerate;
pub mod event;
pub mod incr;
pub mod kernels;
pub mod model;
pub mod reference;
pub mod rel;
pub mod trace;

pub use config::{PruneSites, SimConfig, SimResult};
pub use enumerate::simulate;
pub use event::{Event, EventKind, Execution, INIT_THREAD};
pub use incr::IncrementalOrder;
pub use model::{
    AllowAll, CoherenceOnly, ComboChecker, ConsistencyModel, PartialVerdict, SeqCstRef, Verdict,
};
pub use reference::simulate_reference;
pub use rel::{EventSet, Relation};
pub use trace::{interpret_thread, value_pools, InterpBudget, Trace, TraceEvent, ValuePools};
