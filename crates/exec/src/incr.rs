//! Incremental acyclicity over a growing edge set, with LIFO undo.
//!
//! The enumeration engine's coherence swap-DFS pushes edges (one rf edge,
//! or one coherence-chain extension plus its derived `fr` edges) and pops
//! them on backtrack. Re-running Kahn's algorithm at every DFS node costs
//! `O(V + E)` *per node*; [`IncrementalOrder`] instead maintains a full
//! reachability bit-matrix that an edge insertion updates in
//! `O(rows-touched × words-per-row)` — proportional to the part of the
//! graph the edge actually affects — and a journal so a pop restores the
//! pre-push rows exactly.
//!
//! The structure is the classic incremental transitive closure (Italiano's
//! algorithm) specialised to the DFS access pattern: deletions are only
//! ever *undos of the most recent insertions*, so no decremental machinery
//! is needed — saved rows are replayed in reverse.
//!
//! Cycle detection falls out of the closure for free: inserting `u → v`
//! closes a cycle iff `v` already reaches `u` (or `u == v`). Cycle-closing
//! edges are *counted but not applied* (their reachability update is
//! skipped); while the count is non-zero the graph is cyclic. The engine
//! prunes a subtree the moment its verdict goes `Forbidden`, so in
//! practice at most one cycle edge is ever outstanding per DFS branch.

use crate::kernels;
use crate::rel::Relation;
use telechat_common::EventId;

/// Bits per word.
const WORD: usize = 64;

fn words_for(n: usize) -> usize {
    n.div_ceil(WORD)
}

/// One DFS frame: where the journal stood when the frame opened, and how
/// many cycle edges the frame added.
#[derive(Debug, Clone, Copy)]
struct Frame {
    journal_mark: usize,
    cycles_added: u32,
}

/// Incremental reachability/acyclicity state for a fixed node universe.
#[derive(Debug, Clone)]
pub struct IncrementalOrder {
    /// Node count (fixed at construction; ids must stay below it).
    nodes: usize,
    /// Words per reachability row.
    stride: usize,
    /// `reach[a]` = set of nodes strictly reachable from `a` (row-major).
    reach: Vec<u64>,
    /// Row indices whose previous contents sit in `journal_rows`.
    journal_idx: Vec<u32>,
    /// Saved rows, `stride` words per entry, append-only until undo.
    journal_rows: Vec<u64>,
    /// Open frames (one per [`IncrementalOrder::begin`]).
    frames: Vec<Frame>,
    /// Outstanding cycle edges (base seed cycles plus un-undone pushes).
    cycles: u32,
}

impl IncrementalOrder {
    /// Builds the state over `nodes` events, seeded with the union of
    /// `seeds` (the combo-constant relations, e.g. `po`). Seed edges are
    /// permanent: they sit below every frame and are never undone.
    pub fn new(nodes: usize, seeds: &[&Relation]) -> IncrementalOrder {
        let mut order = IncrementalOrder {
            nodes: 0,
            stride: 0,
            reach: Vec::new(),
            journal_idx: Vec::new(),
            journal_rows: Vec::new(),
            frames: Vec::new(),
            cycles: 0,
        };
        order.reset(nodes, seeds);
        order
    }

    /// Re-initialises the state in place for a (possibly different) node
    /// universe and seed set, reusing the word-matrix and journal
    /// allocations — the combo-rebuild path of session pools (a fresh
    /// combo of the same litmus test has the same node count, so no
    /// reallocation happens at all).
    pub fn reset(&mut self, nodes: usize, seeds: &[&Relation]) {
        let stride = words_for(nodes);
        self.nodes = nodes;
        self.stride = stride;
        self.reach.clear();
        self.reach.resize(nodes * stride, 0);
        self.journal_idx.clear();
        self.journal_rows.clear();
        self.frames.clear();
        self.cycles = 0;
        let mut seed = Relation::with_nodes(nodes);
        for s in seeds {
            seed.union_with(s);
        }
        let closure = seed.transitive_closure();
        for a in 0..nodes {
            let e = EventId(a as u32);
            for b in closure.successors(e) {
                self.reach[a * stride + b.index() / WORD] |= 1u64 << (b.index() % WORD);
            }
            if closure.contains(e, e) {
                self.cycles += 1;
            }
        }
    }

    /// Absorbs every open frame into the permanent baseline: all edges
    /// recorded so far become seed-like (no longer undoable), the journal
    /// is discarded, and the cycle count is preserved. Useful when a
    /// caller builds its base state incrementally (cheaper than a closure
    /// recomputation) and then wants DFS frames on top.
    pub fn snapshot(&mut self) {
        self.journal_idx.clear();
        self.journal_rows.clear();
        self.frames.clear();
    }

    /// Opens an undo frame; every subsequent [`add_edge`] belongs to it
    /// until the matching [`undo`].
    ///
    /// [`add_edge`]: IncrementalOrder::add_edge
    /// [`undo`]: IncrementalOrder::undo
    pub fn begin(&mut self) {
        self.frames.push(Frame {
            journal_mark: self.journal_idx.len(),
            cycles_added: 0,
        });
    }

    /// True iff `b` is strictly reachable from `a` via recorded edges.
    pub fn reaches(&self, a: EventId, b: EventId) -> bool {
        let (a, b) = (a.index(), b.index());
        a < self.nodes && self.reach[a * self.stride + b / WORD] & (1u64 << (b % WORD)) != 0
    }

    /// Records the edge `u → v` in the current frame.
    ///
    /// Returns `false` iff the edge closes a cycle (it is then counted but
    /// its reachability update skipped — see the module docs). Cost is one
    /// scan over the rows that can reach `u` plus one word-parallel OR per
    /// such row.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no frame is open or an id is out of range.
    pub fn add_edge(&mut self, u: EventId, v: EventId) -> bool {
        debug_assert!(!self.frames.is_empty(), "add_edge outside a frame");
        let (ui, vi) = (u.index(), v.index());
        debug_assert!(ui < self.nodes && vi < self.nodes, "id out of range");
        let frame = self.frames.last_mut().expect("open frame");
        if ui == vi || self.reach[vi * self.stride + ui / WORD] & (1u64 << (ui % WORD)) != 0 {
            frame.cycles_added += 1;
            self.cycles += 1;
            return false;
        }
        // targets = reach(v) ∪ {v}: everything newly reachable through u→v.
        let stride = self.stride;
        let mut targets = self.reach[vi * stride..(vi + 1) * stride].to_vec();
        targets[vi / WORD] |= 1u64 << (vi % WORD);
        // Sources: u itself plus every a that already reaches u.
        let (uw, ub) = (ui / WORD, 1u64 << (ui % WORD));
        for a in 0..self.nodes {
            if a != ui && self.reach[a * stride + uw] & ub == 0 {
                continue;
            }
            let row = &self.reach[a * stride..(a + 1) * stride];
            if kernels::is_superset(row, &targets) {
                continue; // already reaches everything new
            }
            self.journal_idx.push(a as u32);
            self.journal_rows.extend_from_slice(row);
            kernels::or_assign(&mut self.reach[a * stride..(a + 1) * stride], &targets);
        }
        true
    }

    /// Closes the most recent frame, restoring the state to just before its
    /// [`begin`](IncrementalOrder::begin).
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn undo(&mut self) {
        let frame = self.frames.pop().expect("undo without begin");
        self.cycles -= frame.cycles_added;
        let stride = self.stride;
        while self.journal_idx.len() > frame.journal_mark {
            let a = self.journal_idx.pop().expect("journal entry") as usize;
            let at = self.journal_rows.len() - stride;
            self.reach[a * stride..(a + 1) * stride].copy_from_slice(&self.journal_rows[at..]);
            self.journal_rows.truncate(at);
        }
    }

    /// True while no recorded edge (seed or pushed) closes a cycle.
    pub fn is_acyclic(&self) -> bool {
        self.cycles == 0
    }

    /// Number of open frames (diagnostics/tests).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::XorShiftRng as Rng;

    fn e(i: u32) -> EventId {
        EventId(i)
    }

    #[test]
    fn detects_cycle_and_undoes() {
        let seed: Relation = [(e(0), e(1))].into_iter().collect();
        let mut ord = IncrementalOrder::new(4, &[&seed]);
        assert!(ord.is_acyclic());
        ord.begin();
        assert!(ord.add_edge(e(1), e(2)));
        assert!(ord.is_acyclic());
        assert!(ord.reaches(e(0), e(2)));
        ord.begin();
        assert!(!ord.add_edge(e(2), e(0)), "closes 0→1→2→0");
        assert!(!ord.is_acyclic());
        ord.undo();
        assert!(ord.is_acyclic());
        ord.undo();
        assert!(!ord.reaches(e(0), e(2)));
        assert!(ord.reaches(e(0), e(1)), "seed edges survive undo");
        assert_eq!(ord.depth(), 0);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut ord = IncrementalOrder::new(2, &[]);
        ord.begin();
        assert!(!ord.add_edge(e(1), e(1)));
        assert!(!ord.is_acyclic());
        ord.undo();
        assert!(ord.is_acyclic());
    }

    #[test]
    fn multiple_edges_per_frame_undo_together() {
        let mut ord = IncrementalOrder::new(8, &[]);
        ord.begin();
        assert!(ord.add_edge(e(0), e(1)));
        assert!(ord.add_edge(e(1), e(2)));
        assert!(ord.add_edge(e(2), e(3)));
        assert!(ord.reaches(e(0), e(3)));
        ord.undo();
        for a in 0..8 {
            for b in 0..8 {
                assert!(!ord.reaches(e(a), e(b)), "{a}->{b} must be gone");
            }
        }
    }

    #[test]
    fn reset_reuses_state_for_new_seed() {
        let seed_a: Relation = [(e(0), e(1))].into_iter().collect();
        let mut ord = IncrementalOrder::new(4, &[&seed_a]);
        ord.begin();
        ord.add_edge(e(1), e(2));
        // Mid-frame reset: everything (frames, pushes, seed) is replaced.
        let seed_b: Relation = [(e(2), e(3)), (e(3), e(2))].into_iter().collect();
        ord.reset(4, &[&seed_b]);
        assert_eq!(ord.depth(), 0);
        assert!(!ord.is_acyclic(), "new seed carries a cycle");
        assert!(!ord.reaches(e(0), e(1)), "old seed gone");
        assert!(ord.reaches(e(2), e(3)));
        // Reset to a larger universe grows the matrix correctly.
        let wide: Relation = [(e(70), e(90))].into_iter().collect();
        ord.reset(96, &[&wide]);
        assert!(ord.is_acyclic());
        assert!(ord.reaches(e(70), e(90)));
        ord.begin();
        assert!(!ord.add_edge(e(90), e(70)));
        assert!(!ord.is_acyclic());
        ord.undo();
        assert!(ord.is_acyclic());
    }

    #[test]
    fn snapshot_absorbs_frames_into_baseline() {
        let mut ord = IncrementalOrder::new(8, &[]);
        ord.begin();
        assert!(ord.add_edge(e(0), e(1)));
        assert!(ord.add_edge(e(1), e(2)));
        ord.snapshot();
        assert_eq!(ord.depth(), 0);
        // The absorbed edges behave exactly like seeds: they survive a
        // full frame unwind…
        ord.begin();
        assert!(ord.add_edge(e(2), e(3)));
        assert!(ord.reaches(e(0), e(3)));
        ord.undo();
        assert!(ord.reaches(e(0), e(2)), "snapshot edges survive undo");
        assert!(!ord.reaches(e(0), e(3)));
        // …and a cycle against them is detected and undoable.
        ord.begin();
        assert!(!ord.add_edge(e(2), e(0)));
        assert!(!ord.is_acyclic());
        ord.undo();
        assert!(ord.is_acyclic());
    }

    #[test]
    fn snapshot_preserves_outstanding_cycles() {
        let mut ord = IncrementalOrder::new(4, &[]);
        ord.begin();
        assert!(!ord.add_edge(e(1), e(1)));
        ord.snapshot();
        assert!(!ord.is_acyclic(), "absorbed cycle is permanent");
    }

    #[test]
    fn seeded_cycle_reported() {
        let seed: Relation = [(e(0), e(1)), (e(1), e(0))].into_iter().collect();
        let ord = IncrementalOrder::new(2, &[&seed]);
        assert!(!ord.is_acyclic());
    }

    /// Differential check against the full-traversal oracle across random
    /// push/undo schedules: after every operation the incremental verdict
    /// must equal `Relation::is_acyclic` on seed ∪ pushed edges, and after
    /// full unwind the reachability must equal the seed closure.
    #[test]
    fn random_dfs_schedules_match_full_recompute() {
        let mut rng = Rng::seed_from_u64(42);
        for case in 0..60 {
            let n = 3 + (case % 5) as usize * 16; // exercises multi-word rows
            // Acyclic seed: forward edges only.
            let mut seed = Relation::with_nodes(n);
            for _ in 0..rng.below(2 * n as u64) {
                let a = rng.below(n as u64 - 1) as u32;
                let b = a + 1 + rng.below(n as u64 - u64::from(a) - 1) as u32;
                seed.insert(e(a), e(b));
            }
            let mut ord = IncrementalOrder::new(n, &[&seed]);
            // A random DFS: stack of frames, each with 1–3 random edges.
            let mut stack: Vec<Vec<(EventId, EventId)>> = Vec::new();
            for _ in 0..40 {
                let push = stack.is_empty() || rng.below(3) > 0;
                if push {
                    let edges: Vec<(EventId, EventId)> = (0..1 + rng.below(3))
                        .map(|_| {
                            (
                                e(rng.below(n as u64) as u32),
                                e(rng.below(n as u64) as u32),
                            )
                        })
                        .collect();
                    ord.begin();
                    for &(u, v) in &edges {
                        ord.add_edge(u, v);
                    }
                    stack.push(edges);
                } else {
                    ord.undo();
                    stack.pop();
                }
                // Oracle: full materialised union + Kahn.
                let mut full = seed.clone();
                for frame in &stack {
                    for &(u, v) in frame {
                        full.insert(u, v);
                    }
                }
                assert_eq!(
                    ord.is_acyclic(),
                    full.is_acyclic(),
                    "case {case}, stack depth {}",
                    stack.len()
                );
            }
            while !stack.is_empty() {
                ord.undo();
                stack.pop();
            }
            // State must be exactly the seed closure again.
            let closure = seed.transitive_closure();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        ord.reaches(e(a as u32), e(b as u32)),
                        closure.contains(e(a as u32), e(b as u32)),
                        "case {case}: residue at {a}->{b}"
                    );
                }
            }
        }
    }
}
