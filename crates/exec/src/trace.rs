//! Per-thread symbolic interpretation.
//!
//! A thread's behaviour depends only on the values its loads observe. The
//! interpreter walks a thread body and *forks* at every load over the
//! location's candidate-value pool, producing the set of possible thread
//! traces. Register taint tracks which read events feed addresses, stored
//! values and branch conditions — yielding the `addr`, `data` and `ctrl`
//! dependency relations hardware models are built on.
//!
//! Forking at loads is where enumeration cost is born: each extra load
//! multiplies the trace count by its pool size — the "every `LDR`
//! contributes to the reads-from relation" explosion of paper §IV-E.

use crate::event::EventKind;
use std::collections::{BTreeMap, BTreeSet};
use telechat_common::{Annot, AnnotSet, Error, Loc, Reg, Result, ThreadId, Val};
use telechat_litmus::{AddrExpr, Expr, Instr, LitmusTest, RmwOp};

/// Candidate read values per location.
pub type ValuePools = BTreeMap<Loc, BTreeSet<Val>>;

/// One event of a thread trace (pre-global-numbering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Read/write/fence.
    pub kind: EventKind,
    /// Location touched (`None` for fences).
    pub loc: Option<Loc>,
    /// Value read (assumed) or written (computed).
    pub val: Option<Val>,
    /// Annotations.
    pub annot: AnnotSet,
}

/// One path through a thread body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// True for paths that ran to the end of the body. Incomplete paths
    /// (unroll bound hit, unjustifiable address assumption) still carry
    /// their event prefix — the value-pool fixpoint harvests writes from
    /// them — but the enumerator only combines complete traces.
    pub complete: bool,
    /// Events in program order.
    pub events: Vec<TraceEvent>,
    /// Final register file.
    pub final_regs: BTreeMap<Reg, Val>,
    /// Read→write event-index pairs of successful RMWs.
    pub rmw_pairs: Vec<(usize, usize)>,
    /// Address dependencies: (read index, dependent access index).
    pub addr_deps: Vec<(usize, usize)>,
    /// Data dependencies: (read index, dependent write index).
    pub data_deps: Vec<(usize, usize)>,
    /// Control dependencies: (read index, po-later event index).
    pub ctrl_deps: Vec<(usize, usize)>,
}

/// Shared interpretation limits (step budget across all forks).
#[derive(Debug)]
pub struct InterpBudget {
    /// Remaining instruction steps.
    pub steps_left: u64,
}

impl InterpBudget {
    /// A fresh budget of `steps` instruction steps.
    pub fn new(steps: u64) -> InterpBudget {
        InterpBudget { steps_left: steps }
    }

    fn charge(&mut self, spent_total: u64) -> Result<()> {
        if self.steps_left == 0 {
            return Err(Error::Budget { steps: spent_total });
        }
        self.steps_left -= 1;
        Ok(())
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace {
            complete: true,
            events: Vec::new(),
            final_regs: BTreeMap::new(),
            rmw_pairs: Vec::new(),
            addr_deps: Vec::new(),
            data_deps: Vec::new(),
            ctrl_deps: Vec::new(),
        }
    }
}

type Taint = BTreeSet<usize>;

#[derive(Debug, Clone)]
struct PathState {
    pc: usize,
    regs: BTreeMap<Reg, (Val, Taint)>,
    trace: Trace,
    ctrl_taint: Taint,
    /// Outstanding exclusive load: (location, read event index).
    pending_excl: Option<(Loc, usize)>,
    /// Backward-jump counts per label, bounded by the unroll factor.
    back_jumps: BTreeMap<String, usize>,
}

/// Interprets `thread` of `test`, forking loads over `pools`.
///
/// `unroll` bounds backward jumps per label; paths exceeding it are dropped
/// (herd's fixed loop-unroll semantics). `excl_fail_paths` additionally
/// explores store-exclusive failure.
///
/// # Errors
///
/// Returns [`Error::Budget`] when the shared step budget is exhausted, and
/// [`Error::IllFormed`] on dynamic type errors (e.g. dereferencing an
/// integer).
pub fn interpret_thread(
    test: &LitmusTest,
    thread: ThreadId,
    pools: &ValuePools,
    unroll: usize,
    excl_fail_paths: bool,
    budget: &mut InterpBudget,
) -> Result<Vec<Trace>> {
    let body = &test.threads[thread.index()];
    let labels: BTreeMap<&str, usize> = body
        .iter()
        .enumerate()
        .filter_map(|(i, ins)| ins.label().map(|l| (l, i)))
        .collect();

    let mut init_regs = BTreeMap::new();
    for (t, r, v) in &test.reg_init {
        if *t == thread {
            init_regs.insert(r.clone(), (v.clone(), Taint::new()));
        }
    }

    let mut stack = vec![PathState {
        pc: 0,
        regs: init_regs,
        trace: Trace::default(),
        ctrl_taint: Taint::new(),
        pending_excl: None,
        back_jumps: BTreeMap::new(),
    }];
    let mut done = Vec::new();
    let budget_start = budget.steps_left;

    while let Some(mut st) = stack.pop() {
        loop {
            if st.pc >= body.len() {
                st.trace.final_regs = st
                    .regs
                    .iter()
                    .map(|(r, (v, _))| (r.clone(), v.clone()))
                    .collect();
                done.push(st.trace);
                break;
            }
            budget.charge(budget_start - budget.steps_left)?;
            let ins = &body[st.pc];
            match ins {
                Instr::Nop | Instr::Label(_) => st.pc += 1,
                Instr::Assign { dst, expr } => {
                    let (v, t) = eval(expr, &st.regs)?;
                    st.regs.insert(dst.clone(), (v, t));
                    st.pc += 1;
                }
                Instr::Jump(l) => {
                    if !take_jump(&mut st, &labels, l, unroll) {
                        abandon(st, &mut done);
                        break; // unroll bound hit
                    }
                }
                Instr::BranchIf { cond, target } => {
                    let (v, t) = eval(cond, &st.regs)?;
                    st.ctrl_taint.extend(t);
                    if v.is_truthy() {
                        if !take_jump(&mut st, &labels, target, unroll) {
                            abandon(st, &mut done);
                            break;
                        }
                    } else {
                        st.pc += 1;
                    }
                }
                Instr::Fence { annot } => {
                    let idx = push_event(
                        &mut st,
                        TraceEvent {
                            kind: EventKind::Fence,
                            loc: None,
                            val: None,
                            annot: *annot,
                        },
                    );
                    let _ = idx;
                    st.pc += 1;
                }
                Instr::Load { dst, addr, annot } => {
                    let Ok((loc, ataint)) = resolve_addr(addr, &st.regs) else {
                        abandon(st, &mut done);
                        break; // unjustifiable address assumption
                    };
                    let candidates: Vec<Val> = pools
                        .get(&loc)
                        .map(|s| s.iter().cloned().collect())
                        .unwrap_or_else(|| vec![test.init_of(&loc)]);
                    // Fork on every candidate but continue in place with the
                    // first (avoids one clone).
                    let mut first = None;
                    for v in candidates {
                        if first.is_none() {
                            first = Some(v);
                            continue;
                        }
                        let mut forked = st.clone();
                        do_load(&mut forked, dst, &loc, v, *annot, &ataint);
                        forked.pc += 1;
                        stack.push(forked);
                    }
                    match first {
                        Some(v) => {
                            do_load(&mut st, dst, &loc, v, *annot, &ataint);
                            st.pc += 1;
                        }
                        None => {
                            abandon(st, &mut done);
                            break; // empty pool: path impossible
                        }
                    }
                }
                Instr::Store { addr, val, annot } => {
                    let Ok((loc, ataint)) = resolve_addr(addr, &st.regs) else {
                        abandon(st, &mut done);
                        break;
                    };
                    let (v, vtaint) = eval(val, &st.regs)?;
                    let idx = push_event(
                        &mut st,
                        TraceEvent {
                            kind: EventKind::Write,
                            loc: Some(loc),
                            val: Some(v),
                            annot: *annot,
                        },
                    );
                    for &t in &ataint {
                        st.trace.addr_deps.push((t, idx));
                    }
                    for &t in &vtaint {
                        st.trace.data_deps.push((t, idx));
                    }
                    st.pc += 1;
                }
                Instr::Rmw {
                    dst,
                    addr,
                    op,
                    operand,
                    annot,
                    has_read_event,
                } => {
                    let Ok((loc, ataint)) = resolve_addr(addr, &st.regs) else {
                        abandon(st, &mut done);
                        break;
                    };
                    let (operand_v, otaint) = eval(operand, &st.regs)?;
                    let expected = match op {
                        RmwOp::CmpXchg { expected } => Some(eval(expected, &st.regs)?),
                        _ => None,
                    };
                    let candidates: Vec<Val> = pools
                        .get(&loc)
                        .map(|s| s.iter().cloned().collect())
                        .unwrap_or_else(|| vec![test.init_of(&loc)]);
                    for old in candidates {
                        let mut cur = st.clone();
                        do_rmw(
                            &mut cur,
                            dst.as_ref(),
                            &loc,
                            op,
                            old,
                            operand_v.clone(),
                            &otaint,
                            &ataint,
                            expected.as_ref().map(|(v, _)| v.clone()),
                            *annot,
                            *has_read_event,
                        )?;
                        cur.pc += 1;
                        stack.push(cur);
                    }
                    break; // all variants pushed to stack; drop `st`
                }
                Instr::StoreExcl {
                    success,
                    addr,
                    val,
                    annot,
                } => {
                    let Ok((loc, ataint)) = resolve_addr(addr, &st.regs) else {
                        abandon(st, &mut done);
                        break;
                    };
                    let (v, vtaint) = eval(val, &st.regs)?;
                    let matching = st
                        .pending_excl
                        .as_ref()
                        .is_some_and(|(l, _)| *l == loc);
                    if excl_fail_paths && matching {
                        // Failure path: no write, status 1.
                        let mut failed = st.clone();
                        failed
                            .regs
                            .insert(success.clone(), (Val::Int(1), Taint::new()));
                        failed.pending_excl = None;
                        failed.pc += 1;
                        stack.push(failed);
                    }
                    if matching {
                        let (_, ridx) = st.pending_excl.take().expect("checked");
                        let widx = push_event(
                            &mut st,
                            TraceEvent {
                                kind: EventKind::Write,
                                loc: Some(loc),
                                val: Some(v),
                                annot: *annot,
                            },
                        );
                        st.trace.rmw_pairs.push((ridx, widx));
                        for &t in &ataint {
                            st.trace.addr_deps.push((t, widx));
                        }
                        for &t in &vtaint {
                            st.trace.data_deps.push((t, widx));
                        }
                        st.regs
                            .insert(success.clone(), (Val::Int(0), Taint::new()));
                    } else {
                        // No matching exclusive load: the store fails.
                        st.regs
                            .insert(success.clone(), (Val::Int(1), Taint::new()));
                    }
                    st.pc += 1;
                }
            }
        }
    }
    Ok(done)
}

/// Records an abandoned path as an incomplete trace (pool fodder only).
fn abandon(mut st: PathState, done: &mut Vec<Trace>) {
    st.trace.complete = false;
    done.push(st.trace);
}

fn take_jump(
    st: &mut PathState,
    labels: &BTreeMap<&str, usize>,
    target: &str,
    unroll: usize,
) -> bool {
    let Some(&tpc) = labels.get(target) else {
        return false; // validate() prevents this; defensive
    };
    if tpc <= st.pc {
        let n = st.back_jumps.entry(target.to_string()).or_insert(0);
        *n += 1;
        if *n > unroll {
            return false;
        }
    }
    st.pc = tpc;
    true
}

fn push_event(st: &mut PathState, ev: TraceEvent) -> usize {
    let idx = st.trace.events.len();
    // Control dependencies reach every later event.
    for &t in &st.ctrl_taint {
        st.trace.ctrl_deps.push((t, idx));
    }
    st.trace.events.push(ev);
    idx
}

fn do_load(st: &mut PathState, dst: &Reg, loc: &Loc, v: Val, annot: AnnotSet, ataint: &Taint) {
    let idx = push_event(
        st,
        TraceEvent {
            kind: EventKind::Read,
            loc: Some(loc.clone()),
            val: Some(v.clone()),
            annot,
        },
    );
    for &t in ataint {
        st.trace.addr_deps.push((t, idx));
    }
    if annot.contains(Annot::Exclusive) {
        st.pending_excl = Some((loc.clone(), idx));
    }
    st.regs.insert(dst.clone(), (v, [idx].into()));
}

#[allow(clippy::too_many_arguments)]
fn do_rmw(
    st: &mut PathState,
    dst: Option<&Reg>,
    loc: &Loc,
    op: &RmwOp,
    old: Val,
    operand: Val,
    otaint: &Taint,
    ataint: &Taint,
    expected: Option<Val>,
    annot: AnnotSet,
    has_read_event: bool,
) -> Result<()> {
    let rannot = if has_read_event {
        annot
    } else {
        annot.with(Annot::NoRet)
    };
    let ridx = push_event(
        st,
        TraceEvent {
            kind: EventKind::Read,
            loc: Some(loc.clone()),
            val: Some(old.clone()),
            annot: rannot,
        },
    );
    for &t in ataint {
        st.trace.addr_deps.push((t, ridx));
    }
    let succeeds = match (op, &expected) {
        (RmwOp::CmpXchg { .. }, Some(e)) => &old == e,
        (RmwOp::CmpXchg { .. }, None) => unreachable!("expected evaluated for CAS"),
        _ => true,
    };
    if succeeds {
        let new = op
            .new_value(&old, &operand)
            .ok_or_else(|| Error::IllFormed("rmw arithmetic on address value".into()))?;
        let widx = push_event(
            st,
            TraceEvent {
                kind: EventKind::Write,
                loc: Some(loc.clone()),
                val: Some(new),
                annot,
            },
        );
        st.trace.rmw_pairs.push((ridx, widx));
        for &t in ataint {
            st.trace.addr_deps.push((t, widx));
        }
        for &t in otaint {
            st.trace.data_deps.push((t, widx));
        }
        // The write's value also depends on the value read.
        st.trace.data_deps.push((ridx, widx));
    }
    if let Some(d) = dst {
        st.regs.insert(d.clone(), (old, [ridx].into()));
    }
    Ok(())
}

/// Resolves an address operand. Callers treat failure (a register holding
/// an integer, or unset) as a *dead path*: the value assumption that led
/// here can never be `rf`-justified in a coherent execution, so the fork is
/// dropped rather than the whole simulation aborted — the behaviour
/// unoptimised spill/reload code (paper §IV-E) depends on.
fn resolve_addr(addr: &AddrExpr, regs: &BTreeMap<Reg, (Val, Taint)>) -> Result<(Loc, Taint)> {
    match addr {
        AddrExpr::Sym(l) => Ok((l.clone(), Taint::new())),
        AddrExpr::Reg(r) => {
            let (v, t) = regs
                .get(r)
                .ok_or_else(|| Error::IllFormed(format!("address register `{r}` unset")))?;
            match v {
                Val::Addr(l) => Ok((l.clone(), t.clone())),
                Val::Int(i) => Err(Error::IllFormed(format!(
                    "dereference of integer {i} via `{r}`"
                ))),
            }
        }
    }
}

fn eval(e: &Expr, regs: &BTreeMap<Reg, (Val, Taint)>) -> Result<(Val, Taint)> {
    match e {
        Expr::Lit(v) => Ok((v.clone(), Taint::new())),
        Expr::Reg(r) => Ok(regs
            .get(r)
            .cloned()
            .unwrap_or((Val::Int(0), Taint::new()))),
        Expr::Bin(op, a, b) => {
            let (va, ta) = eval(a, regs)?;
            let (vb, tb) = eval(b, regs)?;
            let v = op.apply(&va, &vb).ok_or_else(|| {
                Error::IllFormed(format!("bad operands for `{op}`: {va}, {vb}"))
            })?;
            Ok((v, ta.union(&tb).copied().collect()))
        }
    }
}

/// Computes per-location candidate value pools by fix-point iteration.
///
/// Starts from the declared initial values and repeatedly adds every value
/// any thread can store, until stable or `max_iters` rounds (loop-free
/// litmus programs converge in the depth of their longest store-to-load
/// forwarding chain; the cap guards pathological self-feeding programs — any
/// value only reachable past the cap can never be `rf`-justified, so capping
/// is sound for enumeration).
///
/// # Errors
///
/// Propagates interpreter errors (budget, ill-formed programs).
pub fn value_pools(
    test: &LitmusTest,
    unroll: usize,
    max_iters: usize,
    budget: &mut InterpBudget,
) -> Result<ValuePools> {
    let mut pools: ValuePools = test
        .locs
        .iter()
        .map(|d| (d.loc.clone(), [d.init.clone()].into()))
        .collect();
    for _ in 0..max_iters {
        let mut changed = false;
        for t in 0..test.threads.len() {
            let traces =
                interpret_thread(test, ThreadId(t as u8), &pools, unroll, false, budget)?;
            for tr in &traces {
                for ev in &tr.events {
                    if ev.kind == EventKind::Write {
                        let (Some(loc), Some(val)) = (&ev.loc, &ev.val) else {
                            continue;
                        };
                        if let Some(pool) = pools.get_mut(loc) {
                            changed |= pool.insert(val.clone());
                        } else {
                            pools.insert(loc.clone(), [val.clone()].into());
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(pools)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::Arch;
    use telechat_litmus::parse_c11;

    fn budget() -> InterpBudget {
        InterpBudget::new(1_000_000)
    }

    fn lb() -> LitmusTest {
        parse_c11(
            r#"
C11 "LB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=1 /\ P1:r0=1)
"#,
        )
        .unwrap()
    }

    #[test]
    fn pools_reach_fixpoint() {
        let t = lb();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        assert_eq!(pools[&Loc::new("x")].len(), 2); // {0, 1}
        assert_eq!(pools[&Loc::new("y")].len(), 2);
    }

    #[test]
    fn traces_fork_per_read_value() {
        let t = lb();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        // One load with pool {0,1} → two traces.
        assert_eq!(traces.len(), 2);
        let finals: BTreeSet<Val> = traces
            .iter()
            .map(|tr| tr.final_regs[&Reg::new("r0")].clone())
            .collect();
        assert_eq!(finals.len(), 2);
    }

    #[test]
    fn control_dependency_recorded() {
        let t = parse_c11(
            r#"
C11 "ctrl"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  if (r0 == 1) {
    atomic_store_explicit(y, 1, memory_order_relaxed);
  }
}
P1 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
exists (P0:r0=0)
"#,
        )
        .unwrap();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        // The r0=1 trace contains the store, with a ctrl dep from the read.
        let with_store = traces
            .iter()
            .find(|tr| tr.events.iter().any(|e| e.kind == EventKind::Write))
            .expect("taken branch explored");
        assert!(
            with_store.ctrl_deps.contains(&(0, 1)),
            "ctrl {:?}",
            with_store.ctrl_deps
        );
    }

    #[test]
    fn data_dependency_recorded() {
        let t = parse_c11(
            r#"
C11 "data"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, r0 ^ r0, memory_order_relaxed);
}
exists (P0:r0=0)
"#,
        )
        .unwrap();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        for tr in &traces {
            assert!(tr.data_deps.contains(&(0, 1)), "{:?}", tr.data_deps);
            // xor of a value with itself is zero regardless of the read.
            assert_eq!(tr.events[1].val, Some(Val::Int(0)));
        }
    }

    #[test]
    fn rmw_produces_pair() {
        let t = parse_c11(
            r#"
C11 "rmw"
{ y = 0; }
P0 (atomic_int* y) {
  int r1 = atomic_fetch_add_explicit(y, 1, memory_order_relaxed);
}
exists (P0:r1=0)
"#,
        )
        .unwrap();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        // A lone fetch_add is self-feeding: each pool round adds one value
        // (0→1→2→3→4), so the 4-round cap leaves a 5-value pool and 5
        // traces. Only the read-from-init trace survives rf justification.
        assert_eq!(traces.len(), 5);
        for tr in &traces {
            assert_eq!(tr.rmw_pairs, vec![(0, 1)]);
            // Write value = read value + 1, and the data dep read→write holds.
            let r = tr.events[0].val.clone().unwrap().as_int().unwrap();
            let w = tr.events[1].val.clone().unwrap().as_int().unwrap();
            assert_eq!(w, r + 1);
            assert!(tr.data_deps.contains(&(0, 1)));
        }
    }

    #[test]
    fn unroll_bounds_loops() {
        use telechat_common::AnnotSet;
        use telechat_litmus::TestBuilder;
        // loop: r0 = load x; goto loop — infinite without the bound.
        let t = TestBuilder::new("loop", Arch::C11)
            .atomic_loc("x", 0)
            .raw_thread(vec![
                Instr::Label("loop".into()),
                Instr::Load {
                    dst: Reg::new("r0"),
                    addr: AddrExpr::sym("x"),
                    annot: AnnotSet::EMPTY,
                },
                Instr::Jump("loop".into()),
            ])
            .exists(telechat_litmus::Prop::True);
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        // All paths hit the unroll bound: recorded, but none complete.
        assert!(!traces.is_empty());
        assert!(traces.iter().all(|tr| !tr.complete));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let t = lb();
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let mut tiny = InterpBudget::new(1);
        let err = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut tiny).unwrap_err();
        assert!(matches!(err, Error::Budget { .. }));
    }

    #[test]
    fn exclusive_pair_links() {
        use telechat_common::AnnotSet;
        use telechat_litmus::TestBuilder;
        let t = TestBuilder::new("excl", Arch::AArch64)
            .atomic_loc("x", 0)
            .raw_thread(vec![
                Instr::Load {
                    dst: Reg::new("W0"),
                    addr: AddrExpr::sym("x"),
                    annot: AnnotSet::one(Annot::Exclusive),
                },
                Instr::StoreExcl {
                    success: Reg::new("W1"),
                    addr: AddrExpr::sym("x"),
                    val: Expr::int(5),
                    annot: AnnotSet::one(Annot::Exclusive),
                },
            ])
            .exists(telechat_litmus::Prop::True);
        let pools = value_pools(&t, 2, 4, &mut budget()).unwrap();
        let traces = interpret_thread(&t, ThreadId(0), &pools, 2, false, &mut budget()).unwrap();
        for tr in &traces {
            assert_eq!(tr.rmw_pairs, vec![(0, 1)]);
            assert_eq!(tr.final_regs[&Reg::new("W1")], Val::Int(0));
        }
        // With failure paths there are extra traces with status 1 and no pair.
        let traces =
            interpret_thread(&t, ThreadId(0), &pools, 2, true, &mut budget()).unwrap();
        assert!(traces
            .iter()
            .any(|tr| tr.final_regs[&Reg::new("W1")] == Val::Int(1) && tr.rmw_pairs.is_empty()));
    }
}
