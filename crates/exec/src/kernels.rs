//! Word-loop kernels for the bitset relation engine.
//!
//! Every hot word loop of [`crate::rel`] and [`crate::incr`] — row
//! unions/intersections/differences, the `seq` row OR-combines, the
//! Floyd–Warshall inner loop, the `IncrementalOrder` subset probe and row
//! OR — funnels through this module, so the loop shape is written once and
//! the whole engine switches implementations with one cargo feature.
//!
//! Two implementations are always compiled:
//!
//! * [`scalar`] — the original one-word-at-a-time loops, bounds-checked
//!   per word (`get(i).unwrap_or(0)` style). This is the default and the
//!   benchmark baseline.
//! * [`chunked`] — fixed-width chunks of [`chunked::LANES`] words
//!   (`chunks_exact` + scalar tail), the autovectorisation-friendly shape:
//!   the compiler turns each chunk body into `u64x4`/`u64x8` vector ops on
//!   targets that have them, with no unstable `std::simd` needed.
//!
//! The `simd` cargo feature selects which implementation the engine's
//! re-exports resolve to; the other stays compiled (and differentially
//! tested, see the `differential` test module) so benches can measure both
//! from one binary via explicit `kernels::scalar::*` / `kernels::chunked::*`
//! paths.
//!
//! # Semantics
//!
//! All kernels treat slices as zero-extended bit vectors: words past the
//! end of the shorter operand read as `0`. Destination words with no
//! source counterpart are therefore unchanged by OR/ANDNOT and cleared by
//! AND — exactly the semantics of the original loops they replace.

/// One-word-at-a-time kernels: the pre-vectorisation loops, verbatim.
pub mod scalar {
    /// `dst |= src` (zero-extended).
    #[inline]
    pub fn or_assign(dst: &mut [u64], src: &[u64]) {
        for (i, w) in dst.iter_mut().enumerate() {
            *w |= src.get(i).copied().unwrap_or(0);
        }
    }

    /// `dst |= src`, returning the number of newly set bits.
    #[inline]
    pub fn or_assign_added(dst: &mut [u64], src: &[u64]) -> usize {
        let mut added = 0usize;
        for (i, w) in dst.iter_mut().enumerate() {
            let new = *w | src.get(i).copied().unwrap_or(0);
            added += (new ^ *w).count_ones() as usize;
            *w = new;
        }
        added
    }

    /// `dst &= src` (destination words past `src` are cleared).
    #[inline]
    pub fn and_assign(dst: &mut [u64], src: &[u64]) {
        for (i, w) in dst.iter_mut().enumerate() {
            *w &= src.get(i).copied().unwrap_or(0);
        }
    }

    /// `dst &= !src` (zero-extended: words past `src` are unchanged).
    #[inline]
    pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
        for (i, w) in dst.iter_mut().enumerate() {
            *w &= !src.get(i).copied().unwrap_or(0);
        }
    }

    /// Population count of the whole slice.
    #[inline]
    pub fn count_ones(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every word is zero.
    #[inline]
    pub fn is_zero(words: &[u64]) -> bool {
        words.iter().all(|&w| w == 0)
    }

    /// True if `sup ⊇ sub` as bit sets (`sub`'s words past `sup` must be
    /// zero).
    #[inline]
    pub fn is_superset(sup: &[u64], sub: &[u64]) -> bool {
        sub.iter()
            .enumerate()
            .all(|(i, t)| sup.get(i).copied().unwrap_or(0) & t == *t)
    }
}

/// Chunked kernels: [`LANES`]-word fixed-size blocks with a scalar tail.
///
/// The per-chunk bodies index fixed-length `chunks_exact` slices, which is
/// the shape LLVM reliably autovectorises into full-width `u64xN` vector
/// instructions — the "u64x4/u64x8 without `std::simd`" trick. Rows
/// shorter than one chunk delegate straight to [`scalar`]: the chunk
/// setup costs more than it saves there, and small litmus shapes must not
/// pay for the wide path they can't use.
///
/// [`LANES`]: chunked::LANES
pub mod chunked {
    use super::scalar;

    /// Words per chunk. 8×64 = one AVX-512 register or two AVX2 / four
    /// NEON registers — wide enough that the tail is noise at the engine's
    /// row widths (strides 1–8 cover litmus tests up to 512 events).
    pub const LANES: usize = 8;

    /// `dst |= src` (zero-extended).
    #[inline]
    pub fn or_assign(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        if n < LANES {
            // Sub-chunk rows (≤448 events) gain nothing from the chunk
            // setup; fall through to the plain loop.
            return scalar::or_assign(dst, src);
        }
        let (d, s) = (&mut dst[..n], &src[..n]);
        let mut dc = d.chunks_exact_mut(LANES);
        let mut sc = s.chunks_exact(LANES);
        for (dch, sch) in (&mut dc).zip(&mut sc) {
            for i in 0..LANES {
                dch[i] |= sch[i];
            }
        }
        for (dw, sw) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *dw |= *sw;
        }
    }

    /// `dst |= src`, returning the number of newly set bits.
    #[inline]
    pub fn or_assign_added(dst: &mut [u64], src: &[u64]) -> usize {
        let n = dst.len().min(src.len());
        if n < LANES {
            return scalar::or_assign_added(dst, src);
        }
        let (d, s) = (&mut dst[..n], &src[..n]);
        let mut added = 0usize;
        let mut dc = d.chunks_exact_mut(LANES);
        let mut sc = s.chunks_exact(LANES);
        for (dch, sch) in (&mut dc).zip(&mut sc) {
            for i in 0..LANES {
                let new = dch[i] | sch[i];
                added += (new ^ dch[i]).count_ones() as usize;
                dch[i] = new;
            }
        }
        for (dw, sw) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            let new = *dw | *sw;
            added += (new ^ *dw).count_ones() as usize;
            *dw = new;
        }
        added
    }

    /// `dst &= src` (destination words past `src` are cleared).
    #[inline]
    pub fn and_assign(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        if n < LANES {
            return scalar::and_assign(dst, src);
        }
        {
            let (d, s) = (&mut dst[..n], &src[..n]);
            let mut dc = d.chunks_exact_mut(LANES);
            let mut sc = s.chunks_exact(LANES);
            for (dch, sch) in (&mut dc).zip(&mut sc) {
                for i in 0..LANES {
                    dch[i] &= sch[i];
                }
            }
            for (dw, sw) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
                *dw &= *sw;
            }
        }
        dst[n..].fill(0);
    }

    /// `dst &= !src` (zero-extended: words past `src` are unchanged).
    #[inline]
    pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        if n < LANES {
            return scalar::andnot_assign(dst, src);
        }
        let (d, s) = (&mut dst[..n], &src[..n]);
        let mut dc = d.chunks_exact_mut(LANES);
        let mut sc = s.chunks_exact(LANES);
        for (dch, sch) in (&mut dc).zip(&mut sc) {
            for i in 0..LANES {
                dch[i] &= !sch[i];
            }
        }
        for (dw, sw) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *dw &= !*sw;
        }
    }

    /// Population count of the whole slice.
    #[inline]
    pub fn count_ones(words: &[u64]) -> usize {
        if words.len() < LANES {
            return scalar::count_ones(words);
        }
        let mut total = 0usize;
        let mut wc = words.chunks_exact(LANES);
        for ch in &mut wc {
            let mut acc = 0usize;
            for &w in &ch[..LANES] {
                acc += w.count_ones() as usize;
            }
            total += acc;
        }
        for &w in wc.remainder() {
            total += w.count_ones() as usize;
        }
        total
    }

    /// True if every word is zero.
    #[inline]
    pub fn is_zero(words: &[u64]) -> bool {
        if words.len() < LANES {
            return scalar::is_zero(words);
        }
        let mut wc = words.chunks_exact(LANES);
        for ch in &mut wc {
            let mut acc = 0u64;
            for &w in &ch[..LANES] {
                acc |= w;
            }
            if acc != 0 {
                return false;
            }
        }
        wc.remainder().iter().all(|&w| w == 0)
    }

    /// True if `sup ⊇ sub` as bit sets (`sub`'s words past `sup` must be
    /// zero).
    #[inline]
    pub fn is_superset(sup: &[u64], sub: &[u64]) -> bool {
        let n = sup.len().min(sub.len());
        if n < LANES {
            return scalar::is_superset(sup, sub);
        }
        {
            let (s, t) = (&sup[..n], &sub[..n]);
            let mut sc = s.chunks_exact(LANES);
            let mut tc = t.chunks_exact(LANES);
            for (sch, tch) in (&mut sc).zip(&mut tc) {
                let mut missing = 0u64;
                for i in 0..LANES {
                    missing |= tch[i] & !sch[i];
                }
                if missing != 0 {
                    return false;
                }
            }
            for (sw, tw) in sc.remainder().iter().zip(tc.remainder()) {
                if tw & !sw != 0 {
                    return false;
                }
            }
        }
        sub[n..].iter().all(|&w| w == 0)
    }
}

#[cfg(feature = "simd")]
pub use chunked::{
    and_assign, andnot_assign, count_ones, is_superset, is_zero, or_assign, or_assign_added,
};
#[cfg(not(feature = "simd"))]
pub use scalar::{
    and_assign, andnot_assign, count_ones, is_superset, is_zero, or_assign, or_assign_added,
};

#[cfg(test)]
mod differential {
    //! Scalar-vs-chunked equivalence on random words at every length that
    //! exercises the chunk boundary (0, tails, exact multiples, mismatched
    //! operand lengths) — both implementations ship in every build, so the
    //! feature flag can never select an untested path.

    use super::{chunked, scalar};
    use telechat_common::XorShiftRng as Rng;

    fn random_words(rng: &mut Rng, len: usize) -> Vec<u64> {
        (0..len)
            .map(|_| rng.below(u64::MAX) ^ (rng.below(4) * 0x5555_5555_5555_5555))
            .collect()
    }

    #[test]
    fn chunked_matches_scalar_on_random_slices() {
        let mut rng = Rng::seed_from_u64(0xC0FFEE);
        for case in 0..400 {
            let dl = (case * 7 + 1) % 21;
            let sl = (case * 5 + 2) % 21;
            let dst0 = random_words(&mut rng, dl);
            let src = random_words(&mut rng, sl);

            let (mut a, mut b) = (dst0.clone(), dst0.clone());
            scalar::or_assign(&mut a, &src);
            chunked::or_assign(&mut b, &src);
            assert_eq!(a, b, "or_assign dl={dl} sl={sl}");

            let (mut a, mut b) = (dst0.clone(), dst0.clone());
            let ca = scalar::or_assign_added(&mut a, &src);
            let cb = chunked::or_assign_added(&mut b, &src);
            assert_eq!((a, ca), (b, cb), "or_assign_added dl={dl} sl={sl}");

            let (mut a, mut b) = (dst0.clone(), dst0.clone());
            scalar::and_assign(&mut a, &src);
            chunked::and_assign(&mut b, &src);
            assert_eq!(a, b, "and_assign dl={dl} sl={sl}");

            let (mut a, mut b) = (dst0.clone(), dst0.clone());
            scalar::andnot_assign(&mut a, &src);
            chunked::andnot_assign(&mut b, &src);
            assert_eq!(a, b, "andnot_assign dl={dl} sl={sl}");

            assert_eq!(
                scalar::count_ones(&dst0),
                chunked::count_ones(&dst0),
                "count_ones dl={dl}"
            );
            assert_eq!(
                scalar::is_zero(&dst0),
                chunked::is_zero(&dst0),
                "is_zero dl={dl}"
            );
            assert_eq!(
                scalar::is_superset(&dst0, &src),
                chunked::is_superset(&dst0, &src),
                "is_superset dl={dl} sl={sl}"
            );
        }
    }

    #[test]
    fn edge_semantics() {
        // Zero-extension: AND clears the uncovered destination suffix,
        // OR/ANDNOT leave it alone.
        for kernels in [
            (
                scalar::or_assign as fn(&mut [u64], &[u64]),
                scalar::and_assign as fn(&mut [u64], &[u64]),
                scalar::andnot_assign as fn(&mut [u64], &[u64]),
            ),
            (chunked::or_assign, chunked::and_assign, chunked::andnot_assign),
        ] {
            let (or_, and_, andnot_) = kernels;
            let mut d = vec![u64::MAX; 10];
            or_(&mut d, &[0b1]);
            assert_eq!(d, vec![u64::MAX; 10]);
            let mut d = vec![u64::MAX; 10];
            and_(&mut d, &[0b1]);
            assert_eq!(d[0], 0b1);
            assert!(d[1..].iter().all(|&w| w == 0));
            let mut d = vec![u64::MAX; 10];
            andnot_(&mut d, &[0b1]);
            assert_eq!(d[0], u64::MAX - 1);
            assert!(d[1..].iter().all(|&w| w == u64::MAX));
        }
        // Superset with a longer sub: extra non-zero words break it.
        for sup_fn in [
            scalar::is_superset as fn(&[u64], &[u64]) -> bool,
            chunked::is_superset,
        ] {
            assert!(sup_fn(&[0b11], &[0b01, 0, 0]));
            assert!(!sup_fn(&[0b11], &[0b01, 0b1]));
            assert!(sup_fn(&[], &[]));
            assert!(!sup_fn(&[], &[1]));
        }
        // Empty slices.
        assert!(scalar::is_zero(&[]) && chunked::is_zero(&[]));
        assert_eq!(scalar::count_ones(&[]), 0);
        assert_eq!(chunked::count_ones(&[]), 0);
    }
}
