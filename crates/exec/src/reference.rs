//! The naive generate-then-filter enumerator, retained as a reference.
//!
//! This is the pre-refactor engine: it materialises **all** coherence
//! permutations per location up front (Heap's algorithm), drives a
//! single-threaded odometer over rf × co choices, and only consults the
//! consistency model once each candidate is fully built. It is the
//! slowest possible shape of the paper's `herd(P, M)` — kept on purpose:
//!
//! * the differential property tests (`tests/soundness_props.rs`) pin the
//!   incremental engine in [`crate::enumerate`] to produce byte-identical
//!   outcome sets against this oracle;
//! * the old-vs-new criterion bench (`crates/bench/benches/simulation.rs`)
//!   measures what the staged builder buys.
//!
//! Use [`crate::simulate`] for real work.

use crate::config::{SimConfig, SimResult};
use crate::enumerate::{build_combined, interpret_all_traces, Combined};
use crate::event::{Event, EventKind, Execution};
use crate::model::ConsistencyModel;
use crate::rel::Relation;
use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use telechat_common::{Error, EventId, Loc, Outcome, OutcomeSet, Result, StateKey, Val};
use telechat_litmus::LitmusTest;

/// Simulates `test` under `model` with the naive reference enumerator.
///
/// Semantically equivalent to [`crate::simulate`] (the property tests
/// enforce it); ignores [`SimConfig::threads`].
///
/// # Errors
///
/// As [`crate::simulate`]: [`Error::Timeout`] / [`Error::Budget`] on
/// state explosion, [`Error::IllFormed`] on invalid tests.
pub fn simulate_reference(
    test: &LitmusTest,
    model: &dyn ConsistencyModel,
    config: &SimConfig,
) -> Result<SimResult> {
    test.validate()?;
    let start = Instant::now();
    let ft_start = crate::rel::full_traversals();
    let deadline = config.timeout.map(|t| start + t);

    let thread_traces = interpret_all_traces(test, config)?;

    let observed = test.observed_keys();
    let readonly: BTreeSet<Loc> = test
        .locs
        .iter()
        .filter(|d| d.readonly)
        .map(|d| d.loc.clone())
        .collect();

    let mut result = SimResult {
        outcomes: OutcomeSet::new(),
        candidates: 0,
        allowed: 0,
        flags: BTreeSet::new(),
        crashed: false,
        executions: Vec::new(),
        full_traversals: 0,
        pruned_candidates: 0,
        steal_tasks: 0,
        rule_leaves: std::collections::BTreeMap::new(),
        rule_prunes: std::collections::BTreeMap::new(),
        prune_sites: crate::config::PruneSites::default(),
        combo_candidates: telechat_obs::Histogram::new(),
        elapsed: start.elapsed(),
    };

    // If any thread has no complete trace there are no executions.
    if thread_traces.iter().any(Vec::is_empty) {
        result.elapsed = start.elapsed();
        return Ok(result);
    }

    // Odometer over per-thread trace choices.
    let mut combo: Vec<usize> = vec![0; thread_traces.len()];
    loop {
        let traces: Vec<&Trace> = combo
            .iter()
            .enumerate()
            .map(|(t, &i)| &thread_traces[t][i])
            .collect();
        enumerate_combo(
            test, &traces, model, config, &observed, &readonly, deadline, &mut result,
        )?;

        // Advance the odometer.
        let mut t = 0;
        loop {
            if t == combo.len() {
                // Single-threaded: the thread-local delta is the total.
                result.full_traversals = crate::rel::full_traversals() - ft_start;
                result.elapsed = start.elapsed();
                return Ok(result);
            }
            combo[t] += 1;
            if combo[t] < thread_traces[t].len() {
                break;
            }
            combo[t] = 0;
            t += 1;
        }
    }
}

/// All permutations of `items` (Heap's algorithm, deterministic order) —
/// the eager materialisation the incremental engine exists to avoid.
fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    permute(&mut work, 0, &mut out);
    out
}

fn permute(work: &mut Vec<EventId>, k: usize, out: &mut Vec<Vec<EventId>>) {
    if k == work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute(work, k + 1, out);
        work.swap(k, i);
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_combo(
    test: &LitmusTest,
    traces: &[&Trace],
    model: &dyn ConsistencyModel,
    config: &SimConfig,
    observed: &BTreeSet<StateKey>,
    readonly: &BTreeSet<Loc>,
    deadline: Option<Instant>,
    result: &mut SimResult,
) -> Result<()> {
    let combined: Combined = build_combined(test, traces);

    let Some(rf_choices) = combined.rf_candidates() else {
        return Ok(()); // some read unjustifiable: no execution from this combo
    };

    // Coherence permutations per location (non-init writes), materialised
    // eagerly — the whole point of being the naive reference.
    let locs: Vec<Loc> = combined.writes_by_loc.keys().cloned().collect();
    let mut co_choices: Vec<Vec<Vec<EventId>>> = Vec::with_capacity(locs.len());
    for loc in &locs {
        let writes = &combined.writes_by_loc[loc];
        co_choices.push(permutations(&writes[1..])); // element 0 is init
    }

    // The execution skeleton is fixed for the combo; rf/co/outcome vary.
    let mut execution = Execution {
        events: combined.events.clone(),
        po: combined.po.clone(),
        rf: Relation::new(),
        co: Relation::new(),
        rmw: combined.rmw.clone(),
        addr: combined.addr.clone(),
        data: combined.data.clone(),
        ctrl: combined.ctrl.clone(),
        outcome: Outcome::new(),
    };

    // Pre-compute the register part of the outcome (fixed per combo).
    let mut reg_outcome = Outcome::new();
    for key in observed {
        if let StateKey::Reg(t, r) = key {
            let v = combined
                .final_regs
                .get(&(*t, r.clone()))
                .cloned()
                .unwrap_or(Val::Int(0));
            reg_outcome.set(key.clone(), v);
        }
    }

    let mut rf_odo = vec![0usize; rf_choices.len()];
    loop {
        // Build rf for this choice.
        let mut rf = Relation::new();
        for (i, &r) in combined.reads.iter().enumerate() {
            rf.insert(rf_choices[i][rf_odo[i]], r);
        }

        let mut co_odo = vec![0usize; co_choices.len()];
        loop {
            result.candidates += 1;
            if result.candidates > config.max_candidates {
                return Err(Error::Budget {
                    steps: result.candidates,
                });
            }
            if result.candidates.is_multiple_of(256) {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        let limit_ms = config
                            .timeout
                            .map(|t| t.as_millis() as u64)
                            .unwrap_or(0);
                        return Err(Error::Timeout { limit_ms });
                    }
                }
            }

            // Build co: per location, init first then the chosen permutation,
            // transitively closed.
            let mut co = Relation::new();
            let mut last_write: BTreeMap<&Loc, EventId> = BTreeMap::new();
            for (li, loc) in locs.iter().enumerate() {
                let perm = &co_choices[li][co_odo[li]];
                let init = combined.init_of[loc];
                let mut chain: Vec<EventId> = Vec::with_capacity(perm.len() + 1);
                chain.push(init);
                chain.extend(perm.iter().copied());
                for a in 0..chain.len() {
                    for b in (a + 1)..chain.len() {
                        co.insert(chain[a], chain[b]);
                    }
                }
                last_write.insert(loc, *chain.last().expect("non-empty"));
            }

            execution.rf = rf.clone();
            execution.co = co;

            // Outcome: registers (fixed) + observed locations (co-final).
            let mut outcome = reg_outcome.clone();
            for key in observed {
                if let StateKey::Loc(l) = key {
                    let v = last_write
                        .get(l)
                        .map(|w| {
                            execution.events[w.index()]
                                .val
                                .clone()
                                .expect("writes have values")
                        })
                        .unwrap_or_else(|| test.init_of(l));
                    outcome.set(key.clone(), v);
                }
            }
            execution.outcome = outcome;

            match model.check(&execution) {
                crate::model::Verdict::Allowed { flags } => {
                    result.allowed += 1;
                    result.flags.extend(flags);
                    if !readonly.is_empty()
                        && execution.events.iter().any(|e: &Event| {
                            e.kind == EventKind::Write
                                && !e.is_init()
                                && e.loc.as_ref().is_some_and(|l| readonly.contains(l))
                        })
                    {
                        result.crashed = true;
                    }
                    result.outcomes.insert(execution.outcome.clone());
                    if config.keep_executions && result.executions.len() < config.max_kept {
                        result.executions.push(execution.clone());
                    }
                }
                crate::model::Verdict::Forbidden { .. } => {}
            }

            // Advance co odometer.
            let mut li = 0;
            loop {
                if li == co_choices.len() {
                    break;
                }
                co_odo[li] += 1;
                if co_odo[li] < co_choices[li].len() {
                    break;
                }
                co_odo[li] = 0;
                li += 1;
            }
            if li == co_choices.len() {
                break;
            }
        }

        // Advance rf odometer.
        let mut i = 0;
        loop {
            if i == rf_choices.len() {
                return Ok(());
            }
            rf_odo[i] += 1;
            if rf_odo[i] < rf_choices[i].len() {
                break;
            }
            rf_odo[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AllowAll, SeqCstRef};
    use telechat_litmus::parse_c11;

    const SB: &str = r#"
C11 "SB"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(y, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(y, 1, memory_order_relaxed);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P0:r0=0 /\ P1:r0=0)
"#;

    #[test]
    fn reference_matches_classic_sb_counts() {
        let test = parse_c11(SB).unwrap();
        let r = simulate_reference(&test, &AllowAll, &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 4);
        let r = simulate_reference(&test, &SeqCstRef, &SimConfig::default()).unwrap();
        assert_eq!(r.outcomes.len(), 3);
    }

    #[test]
    fn reference_budget_error() {
        let test = parse_c11(SB).unwrap();
        let cfg = SimConfig {
            max_candidates: 2,
            ..SimConfig::default()
        };
        assert!(simulate_reference(&test, &AllowAll, &cfg)
            .unwrap_err()
            .is_exhaustion());
    }
}
