//! Events and candidate executions.

use crate::rel::{EventSet, Relation};
use std::fmt;
use telechat_common::{Annot, AnnotSet, EventId, Loc, Outcome, ThreadId, Val};

/// The pseudo-thread that owns the initial-state writes.
pub const INIT_THREAD: ThreadId = ThreadId(u8::MAX);

/// The kind of a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A read of a shared location.
    Read,
    /// A write of a shared location (including the implicit init writes).
    Write,
    /// A fence.
    Fence,
}

/// One node of an execution graph (paper Def. II.1: "nodes are events").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense id; doubles as index into `Execution::events`.
    pub id: EventId,
    /// Owning thread ([`INIT_THREAD`] for init writes).
    pub thread: ThreadId,
    /// Position within the thread (program order index).
    pub po_index: usize,
    /// Read, write or fence.
    pub kind: EventKind,
    /// The location touched (`None` for fences).
    pub loc: Option<Loc>,
    /// Value read or written (`None` for fences).
    pub val: Option<Val>,
    /// Ordering/flavour annotations.
    pub annot: AnnotSet,
}

impl Event {
    /// True for the implicit initial-state writes.
    pub fn is_init(&self) -> bool {
        self.thread == INIT_THREAD
    }

    /// True if the event reads or writes `loc`.
    pub fn touches(&self, loc: &Loc) -> bool {
        self.loc.as_ref() == Some(loc)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            EventKind::Read => "R",
            EventKind::Write => "W",
            EventKind::Fence => "F",
        };
        write!(f, "{}: {kind}", self.id)?;
        if let Some(l) = &self.loc {
            write!(f, "[{l}]")?;
        }
        if let Some(v) = &self.val {
            write!(f, "={v}")?;
        }
        write!(f, " ({})", self.annot)?;
        if !self.is_init() {
            write!(f, " @{}#{}", self.thread, self.po_index)?;
        }
        Ok(())
    }
}

/// A candidate execution: events plus the base relations (paper Def. II.1).
///
/// `po`, `rf`, `co` and the dependency relations are built by the
/// enumerator; everything else (`fr`, `po-loc`, `ext`, …) is derived on
/// demand. A consistency model decides whether the candidate is *allowed*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// All events; `events[i].id == EventId(i)`. Init writes come first.
    pub events: Vec<Event>,
    /// Program order: transitive, intra-thread, init writes excluded.
    pub po: Relation,
    /// Reads-from: one edge `(w, r)` per read `r` (the justifying write).
    pub rf: Relation,
    /// Coherence: per-location total order over writes, transitive, with the
    /// init write first.
    pub co: Relation,
    /// Read→write pairs of atomic RMW operations.
    pub rmw: Relation,
    /// Address dependencies (read → dependent access).
    pub addr: Relation,
    /// Data dependencies (read → store whose value depends on it).
    pub data: Relation,
    /// Control dependencies (read → po-later event after a dependent branch).
    pub ctrl: Relation,
    /// The final-state observation this execution produces.
    pub outcome: Outcome,
}

impl Execution {
    /// The set of all events.
    pub fn universe(&self) -> EventSet {
        self.events.iter().map(|e| e.id).collect()
    }

    /// Events of a given kind.
    pub fn kind_set(&self, kind: EventKind) -> EventSet {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.id)
            .collect()
    }

    /// Reads (`R`).
    pub fn reads(&self) -> EventSet {
        self.kind_set(EventKind::Read)
    }

    /// Writes (`W`), including init writes.
    pub fn writes(&self) -> EventSet {
        self.kind_set(EventKind::Write)
    }

    /// Fences (`F`).
    pub fn fences(&self) -> EventSet {
        self.kind_set(EventKind::Fence)
    }

    /// Memory accesses (`M = R | W`).
    pub fn accesses(&self) -> EventSet {
        self.reads().union(&self.writes())
    }

    /// Init writes (`IW`).
    pub fn init_writes(&self) -> EventSet {
        self.events
            .iter()
            .filter(|e| e.is_init())
            .map(|e| e.id)
            .collect()
    }

    /// Events carrying an annotation.
    pub fn annot_set(&self, a: Annot) -> EventSet {
        self.events
            .iter()
            .filter(|e| e.annot.contains(a))
            .map(|e| e.id)
            .collect()
    }

    /// Same-location pairs (`loc`), over accesses only, excluding identity.
    ///
    /// Built group-at-a-time: one [`EventSet`] per location, one
    /// word-parallel row-OR per member (instead of `n²` point insertions).
    pub fn loc_rel(&self) -> Relation {
        let mut groups: std::collections::BTreeMap<&Loc, EventSet> = Default::default();
        for e in &self.events {
            if let (false, Some(l)) = (e.kind == EventKind::Fence, e.loc.as_ref()) {
                groups.entry(l).or_default().insert(e.id);
            }
        }
        let mut r = Relation::with_nodes(self.events.len());
        for s in groups.values() {
            for a in s.iter() {
                r.insert_row(a, s);
            }
        }
        for e in &self.events {
            r.remove(e.id, e.id);
        }
        r
    }

    /// Different-thread pairs (`ext`), init events considered external to
    /// every thread. Each row is a word-parallel set difference against the
    /// owning thread's event group.
    pub fn ext_rel(&self) -> Relation {
        let universe = self.universe();
        let mut by_thread: std::collections::BTreeMap<ThreadId, EventSet> = Default::default();
        for e in &self.events {
            if !e.is_init() {
                by_thread.entry(e.thread).or_default().insert(e.id);
            }
        }
        let mut r = Relation::with_nodes(self.events.len());
        for e in &self.events {
            let mut row = universe.clone();
            if e.is_init() {
                row.remove(e.id);
            } else {
                row.diff_with(&by_thread[&e.thread]);
            }
            r.insert_row(e.id, &row);
        }
        r
    }

    /// Same-thread pairs (`int`), excluding identity.
    pub fn int_rel(&self) -> Relation {
        let mut by_thread: std::collections::BTreeMap<ThreadId, EventSet> = Default::default();
        for e in &self.events {
            if !e.is_init() {
                by_thread.entry(e.thread).or_default().insert(e.id);
            }
        }
        let mut r = Relation::with_nodes(self.events.len());
        for e in &self.events {
            if !e.is_init() {
                r.insert_row(e.id, &by_thread[&e.thread]);
                r.remove(e.id, e.id);
            }
        }
        r
    }

    /// From-read (`fr = rf⁻¹ ; co`, minus identity).
    pub fn fr(&self) -> Relation {
        let fr = self.rf.inverse().seq(&self.co);
        fr.iter().filter(|(a, b)| a != b).collect()
    }

    /// Program order restricted to same location (`po-loc`).
    pub fn po_loc(&self) -> Relation {
        self.po.inter(&self.loc_rel())
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (enumerator-internal invariant).
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Pretty multi-line rendering of the execution graph (events plus the
    /// communication edges), used by the figure regenerators.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.events {
            if e.is_init() {
                continue;
            }
            let _ = writeln!(s, "  {e}");
        }
        let edge = |name: &str, r: &Relation, s: &mut String| {
            for (a, b) in r.iter() {
                let _ = writeln!(s, "  {a} -{name}-> {b}");
            }
        };
        edge("rf", &self.rf, &mut s);
        edge("co", &self.co, &mut s);
        edge("fr", &self.fr(), &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::StateKey;

    /// Hand-builds the classic MP execution:
    /// init: W x=0 (e0), W y=0 (e1)
    /// P0:   W x=1 (e2), W y=1 (e3)
    /// P1:   R y=1 (e4), R x=0 (e5)
    fn mp_execution() -> Execution {
        let ev = |id: u32, thread, po_index, kind, loc: &str, val: i64| Event {
            id: EventId(id),
            thread,
            po_index,
            kind,
            loc: Some(Loc::new(loc)),
            val: Some(Val::Int(val)),
            annot: AnnotSet::EMPTY,
        };
        let events = vec![
            ev(0, INIT_THREAD, 0, EventKind::Write, "x", 0),
            ev(1, INIT_THREAD, 1, EventKind::Write, "y", 0),
            ev(2, ThreadId(0), 0, EventKind::Write, "x", 1),
            ev(3, ThreadId(0), 1, EventKind::Write, "y", 1),
            ev(4, ThreadId(1), 0, EventKind::Read, "y", 1),
            ev(5, ThreadId(1), 1, EventKind::Read, "x", 0),
        ];
        let mut po = Relation::new();
        po.insert(EventId(2), EventId(3));
        po.insert(EventId(4), EventId(5));
        let mut rf = Relation::new();
        rf.insert(EventId(3), EventId(4)); // r(y)=1 from W y=1
        rf.insert(EventId(0), EventId(5)); // r(x)=0 from init
        let mut co = Relation::new();
        co.insert(EventId(0), EventId(2)); // x: init -> 1
        co.insert(EventId(1), EventId(3)); // y: init -> 1
        let mut outcome = Outcome::new();
        outcome.set(StateKey::reg(ThreadId(1), "r0"), Val::Int(1));
        outcome.set(StateKey::reg(ThreadId(1), "r1"), Val::Int(0));
        Execution {
            events,
            po,
            rf,
            co,
            rmw: Relation::new(),
            addr: Relation::new(),
            data: Relation::new(),
            ctrl: Relation::new(),
            outcome,
        }
    }

    #[test]
    fn base_sets() {
        let x = mp_execution();
        assert_eq!(x.reads().len(), 2);
        assert_eq!(x.writes().len(), 4);
        assert_eq!(x.init_writes().len(), 2);
        assert_eq!(x.accesses().len(), 6);
        assert!(x.fences().is_empty());
    }

    #[test]
    fn fr_derivation() {
        let x = mp_execution();
        let fr = x.fr();
        // e5 reads x=0 from init (e0); co has e0->e2; so fr(e5, e2).
        assert!(fr.contains(EventId(5), EventId(2)));
        assert_eq!(fr.len(), 1);
    }

    #[test]
    fn loc_and_ext() {
        let x = mp_execution();
        let loc = x.loc_rel();
        assert!(loc.contains(EventId(2), EventId(5))); // both x
        assert!(!loc.contains(EventId(2), EventId(3))); // x vs y
        let ext = x.ext_rel();
        assert!(ext.contains(EventId(2), EventId(4)));
        assert!(!ext.contains(EventId(2), EventId(3)));
        let int = x.int_rel();
        assert!(int.contains(EventId(2), EventId(3)));
        assert!(!int.contains(EventId(0), EventId(1))); // init not int
    }

    #[test]
    fn the_mp_cycle_is_visible() {
        // The classic violation: po(2,3) rf(3,4) po(4,5) fr(5,2) is a cycle
        // in po|rf|fr — the "message passing" shape a strong model forbids.
        let x = mp_execution();
        let hb = x.po.union(&x.rf).union(&x.fr());
        assert!(!hb.is_acyclic());
    }

    #[test]
    fn display_and_render() {
        let x = mp_execution();
        let e = x.event(EventId(4));
        assert_eq!(e.to_string(), "e4: R[y]=1 (-) @P1#0");
        let rendered = x.render();
        assert!(rendered.contains("-rf->"));
        assert!(rendered.contains("-fr->"));
    }
}
