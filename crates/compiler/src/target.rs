//! Compilation targets: architecture plus ISA extensions.

use std::fmt;
use telechat_common::Arch;

/// Architecture extensions that change instruction selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArchExt {
    /// Armv8.1 Large Systems Extension: LSE atomics (`LDADD`, `SWP`, `CAS`).
    pub lse: bool,
    /// Armv8.3 RCpc: the `LDAPR` acquire-PC load (§IV-F case study).
    pub rcpc: bool,
    /// Armv8.4 LSE2: aligned `LDP`/`STP` are single-copy atomic (16 bytes).
    pub lse2: bool,
}

/// A compilation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Target architecture.
    pub arch: Arch,
    /// Enabled extensions (AArch64 only; ignored elsewhere).
    pub ext: ArchExt,
    /// Position-independent code: shared globals are reached through
    /// GOT/TOC/literal-pool loads — the address-materialisation memory
    /// traffic the `s2l` optimiser later removes (paper §IV-E).
    pub pic: bool,
}

impl Target {
    /// The plain (v8.0-like) target for an architecture, PIC as distro
    /// compilers default to.
    pub fn new(arch: Arch) -> Target {
        Target {
            arch,
            ext: ArchExt::default(),
            pic: true,
        }
    }

    /// Armv8.1-a with LSE (the Fig. 10 target).
    pub fn armv81_lse() -> Target {
        Target {
            arch: Arch::AArch64,
            ext: ArchExt {
                lse: true,
                ..ArchExt::default()
            },
            pic: true,
        }
    }

    /// Armv8.3-a with LSE and RCpc (the LDAPR case-study target, §IV-F).
    pub fn armv83_rcpc() -> Target {
        Target {
            arch: Arch::AArch64,
            ext: ArchExt {
                lse: true,
                rcpc: true,
                lse2: false,
            },
            pic: true,
        }
    }

    /// Armv8.4-a with LSE2 (the 128-bit atomics target, bugs [36]/[37]/[39]).
    pub fn armv84_lse2() -> Target {
        Target {
            arch: Arch::AArch64,
            ext: ArchExt {
                lse: true,
                rcpc: true,
                lse2: true,
            },
            pic: true,
        }
    }

    /// Disables position-independent code (direct ADRP/ADD addressing).
    #[must_use]
    pub fn without_pic(mut self) -> Target {
        self.pic = false;
        self
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.arch)?;
        if self.arch == Arch::AArch64 {
            if self.ext.lse2 {
                write!(f, "+lse2")?;
            } else if self.ext.lse {
                write!(f, "+lse")?;
            }
            if self.ext.rcpc {
                write!(f, "+rcpc")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(Target::armv81_lse().ext.lse);
        assert!(!Target::armv81_lse().ext.lse2);
        assert!(Target::armv84_lse2().ext.lse2);
        assert!(Target::armv83_rcpc().ext.rcpc);
        assert!(Target::new(Arch::X86_64).pic);
        assert!(!Target::new(Arch::X86_64).without_pic().pic);
    }

    #[test]
    fn display() {
        assert_eq!(Target::armv84_lse2().to_string(), "AArch64+lse2+rcpc");
        assert_eq!(Target::new(Arch::Mips).to_string(), "MIPS");
    }
}
