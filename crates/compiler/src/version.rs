//! Compiler identities, optimisation levels and versioned bug knobs.
//!
//! The paper's experiments hinge on *which compiler version* translated the
//! test: the §IV-B/§IV-C bugs exist in some releases and are fixed in
//! later ones. We model that with an explicit bug table: a
//! [`CompilerId`] `has_bug` query gates each buggy emission path. The
//! version-to-bug mapping is schematic (releases compressed to major
//! numbers) but order-faithful: every bug is present before its fix and
//! absent after, matching the paper's reports [36]–[39] and [54].

use std::fmt;
use std::str::FromStr;
use telechat_common::Error;

/// The compiler family under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompilerFamily {
    /// LLVM/Clang.
    Llvm,
    /// GNU GCC.
    Gcc,
}

impl fmt::Display for CompilerFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerFamily::Llvm => write!(f, "clang"),
            CompilerFamily::Gcc => write!(f, "gcc"),
        }
    }
}

/// A compiler under test: family plus major version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompilerId {
    /// Family.
    pub family: CompilerFamily,
    /// Major version (e.g. 11 for LLVM 11, 10 for GCC 10).
    pub major: u32,
}

impl CompilerId {
    /// `clang-<major>`.
    pub fn llvm(major: u32) -> CompilerId {
        CompilerId {
            family: CompilerFamily::Llvm,
            major,
        }
    }

    /// `gcc-<major>`.
    pub fn gcc(major: u32) -> CompilerId {
        CompilerId {
            family: CompilerFamily::Gcc,
            major,
        }
    }

    /// The paper artefact's compilers: LLVM 11, GCC 9 and GCC 10.
    pub fn artefact_compilers() -> Vec<CompilerId> {
        vec![CompilerId::llvm(11), CompilerId::gcc(9), CompilerId::gcc(10)]
    }

    /// A current, fully fixed compiler of each family.
    pub fn latest(family: CompilerFamily) -> CompilerId {
        match family {
            CompilerFamily::Llvm => CompilerId::llvm(17),
            CompilerFamily::Gcc => CompilerId::gcc(13),
        }
    }

    /// Does this release carry the given bug?
    pub fn has_bug(self, bug: BugId) -> bool {
        use CompilerFamily::*;
        match bug {
            // Fetch-add with unused result selected STADD even for ordered
            // RMWs, dropping acquire/release (the first Fig. 10 bug, [54]).
            BugId::StaddSelect => match self.family {
                Llvm => self.major < 10,
                Gcc => self.major < 10,
            },
            // The dead-register-definitions pass zeroed the destination of
            // LSE atomics, turning LDADDAL into an STADD alias (the second
            // Fig. 10 bug, [53]/[55]).
            BugId::DeadRegZeroAtomics => match self.family {
                Llvm => (10..=12).contains(&self.major),
                Gcc => self.major == 10,
            },
            // The same zeroing applied to SWP: atomic_exchange with unused
            // result reorders past a later acquire fence (Fig. 1, bug [38],
            // reported 2023 — fixed only in the newest release here).
            BugId::ExchangeDeadReg => match self.family {
                Llvm => self.major <= 16,
                Gcc => self.major <= 12,
            },
            // 128-bit seq-cst load via bare LDP under LSE2 misses its
            // barrier (bug [37]; GCC fixed first [28], LLVM followed).
            BugId::LdpSeqCstNoBarrier => match self.family {
                Llvm => self.major <= 16,
                Gcc => self.major <= 10,
            },
            // 128-bit atomic store writes its register pair in the wrong
            // order (bug [39]).
            BugId::StpWrongEndian => match self.family {
                Llvm => self.major <= 15,
                Gcc => false,
            },
            // const 128-bit atomic load implemented with a store-pair
            // sequence: crashes on read-only memory (bug [36]); the fix
            // [56] — LDP from Armv8.4 up — landed *before* the barrier fix
            // for [37], so LLVM 16 uses LDP but without seq-cst barriers.
            BugId::ConstAtomicStp => match self.family {
                Llvm => self.major <= 15,
                Gcc => self.major <= 10,
            },
            // GCC if-conversion at -O1 on Armv7 removes control
            // dependencies when both arms store the same value (the
            // llvm-O1-ARM vs gcc-O1-ARM +ve gap of Table IV).
            BugId::CtrlDepElimO1 => match self.family {
                Llvm => false,
                Gcc => true, // behaviour, not fixed: a legal C11 transform
            },
        }
    }
}

impl fmt::Display for CompilerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.family, self.major)
    }
}

/// The known miscompilation (and transformation) knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugId {
    /// STADD selected for ordered fetch-add with unused result.
    StaddSelect,
    /// Dead-register pass zeroes LSE atomic destinations (LDADD family).
    DeadRegZeroAtomics,
    /// Dead-register pass zeroes SWP destinations (atomic_exchange).
    ExchangeDeadReg,
    /// 128-bit seq-cst LDP without barrier.
    LdpSeqCstNoBarrier,
    /// 128-bit store pair wrong-endian.
    StpWrongEndian,
    /// const 128-bit atomic load via store-pair (run-time crash).
    ConstAtomicStp,
    /// -O1 if-conversion drops same-value control dependencies (GCC).
    CtrlDepElimO1,
}

/// Optimisation level (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimisation.
    O0,
    /// `-O1`.
    O1,
    /// `-O2`.
    O2,
    /// `-O3`.
    O3,
    /// `-Ofast`.
    Ofast,
    /// `-Og` (GCC only).
    Og,
}

impl OptLevel {
    /// The levels of the paper's Table IV campaign.
    pub const CAMPAIGN: [OptLevel; 5] = [
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Ofast,
        OptLevel::Og,
    ];

    /// Does this level run the dead-local elimination pass?
    pub fn eliminates_dead_locals(self) -> bool {
        matches!(self, OptLevel::O2 | OptLevel::O3 | OptLevel::Ofast)
    }

    /// Is the level supported by the family? (`clang` has no `-Og`.)
    pub fn supported_by(self, family: CompilerFamily) -> bool {
        !(self == OptLevel::Og && family == CompilerFamily::Llvm)
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Ofast => "-Ofast",
            OptLevel::Og => "-Og",
        };
        f.write_str(s)
    }
}

impl FromStr for OptLevel {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim_start_matches('-') {
            "O0" => Ok(OptLevel::O0),
            "O1" => Ok(OptLevel::O1),
            "O2" => Ok(OptLevel::O2),
            "O3" => Ok(OptLevel::O3),
            "Ofast" => Ok(OptLevel::Ofast),
            "Og" => Ok(OptLevel::Og),
            other => Err(Error::parse(format!("unknown optimisation level `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_table_is_order_faithful() {
        // Every bug fixed in the latest releases.
        for family in [CompilerFamily::Llvm, CompilerFamily::Gcc] {
            let latest = CompilerId::latest(family);
            for bug in [
                BugId::StaddSelect,
                BugId::DeadRegZeroAtomics,
                BugId::ExchangeDeadReg,
                BugId::LdpSeqCstNoBarrier,
                BugId::StpWrongEndian,
                BugId::ConstAtomicStp,
            ] {
                assert!(!latest.has_bug(bug), "{latest} still has {bug:?}");
            }
        }
        // The artefact's LLVM 11 carries the dead-register and exchange
        // bugs (Fig. 10 / Fig. 1).
        let llvm11 = CompilerId::llvm(11);
        assert!(llvm11.has_bug(BugId::DeadRegZeroAtomics));
        assert!(llvm11.has_bug(BugId::ExchangeDeadReg));
        assert!(!llvm11.has_bug(BugId::StaddSelect), "fixed in 10");
    }

    #[test]
    fn opt_levels() {
        assert!(OptLevel::O2.eliminates_dead_locals());
        assert!(!OptLevel::O1.eliminates_dead_locals());
        assert!(!OptLevel::Og.supported_by(CompilerFamily::Llvm));
        assert!(OptLevel::Og.supported_by(CompilerFamily::Gcc));
        assert_eq!("O2".parse::<OptLevel>().unwrap(), OptLevel::O2);
        assert_eq!("-Ofast".parse::<OptLevel>().unwrap(), OptLevel::Ofast);
        assert!("Oz".parse::<OptLevel>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(CompilerId::llvm(11).to_string(), "clang-11");
        assert_eq!(CompilerId::gcc(10).to_string(), "gcc-10");
        assert_eq!(OptLevel::Ofast.to_string(), "-Ofast");
    }
}
