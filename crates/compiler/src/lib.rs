//! A simulated C11 compiler family: LLVM- and GCC-flavoured code
//! generation for six architectures, with versioned bug knobs.
//!
//! The real Téléchat drives actual `clang`/`gcc` binaries; this crate is
//! the offline substitute (see DESIGN.md §2). It reproduces exactly what
//! the paper's experiments observe of a compiler — the assembly it emits
//! for concurrent C11 litmus tests — including the historical
//! miscompilations the paper reports:
//!
//! * Fig. 10 / [54]: `STADD` selection and dead-register zeroing of LSE
//!   atomics;
//! * Fig. 1 / [38]: `SWP`-destination zeroing (atomic exchange reordering
//!   past an acquire fence);
//! * [37]: 128-bit seq-cst `LDP` without barriers;
//! * [39]: wrong-endian 128-bit store pairs;
//! * [36]: `const` atomic loads implemented with store-back loops.
//!
//! # Example
//!
//! ```
//! use telechat_compiler::{Compiler, CompilerId, OptLevel, Target};
//! use telechat_litmus::parse_c11;
//!
//! let test = parse_c11(r#"
//! C11 "store"
//! { x = 0; }
//! P0 (atomic_int* x) { atomic_store_explicit(x, 1, memory_order_release); }
//! exists (x=1)
//! "#)?;
//! let cc = Compiler::new(CompilerId::llvm(17), OptLevel::O2, Target::armv81_lse());
//! let out = cc.compile(&test)?;
//! assert_eq!(out.object.functions.len(), 1);
//! # Ok::<(), telechat_common::Error>(())
//! ```

pub mod backend;
pub mod compile;
pub mod passes;
pub mod target;
pub mod version;

pub use compile::{CompileOutput, Compiler};
pub use target::{ArchExt, Target};
pub use version::{BugId, CompilerFamily, CompilerId, OptLevel};
