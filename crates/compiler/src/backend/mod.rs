//! Instruction-selection framework shared by the six back ends.
//!
//! [`emit_thread`] walks a thread's IR and drives an architecture
//! [`Emitter`]: it owns register allocation, expression lowering, branch
//! shapes and address materialisation policy; the emitter supplies the
//! architecture's instructions (and, for AArch64, the versioned bug paths).

pub mod a64;
pub mod armv7;
pub mod mips;
pub mod ppc;
pub mod riscv;
pub mod x86;

use std::collections::BTreeMap;
use telechat_common::{Annot, AnnotSet, Error, Loc, Reg, Result, Val};
use telechat_litmus::{AddrExpr, BinOp, Expr, Instr, LitmusTest, RmwOp, Width};

/// C11 ordering classes, extracted from an annotation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ord11 {
    /// Plain (non-atomic) access.
    Na,
    /// `memory_order_relaxed`.
    Rlx,
    /// `memory_order_acquire`.
    Acq,
    /// `memory_order_release`.
    Rel,
    /// `memory_order_acq_rel`.
    AcqRel,
    /// `memory_order_seq_cst`.
    Sc,
}

/// Extracts the C11 ordering class of a source-level access.
pub fn ord_of(annot: AnnotSet) -> Ord11 {
    if annot.contains(Annot::NonAtomic) {
        Ord11::Na
    } else if annot.contains(Annot::SeqCst) {
        Ord11::Sc
    } else if annot.contains(Annot::AcqRel) {
        Ord11::AcqRel
    } else if annot.contains(Annot::Acquire) {
        Ord11::Acq
    } else if annot.contains(Annot::Release) {
        Ord11::Rel
    } else {
        Ord11::Rlx
    }
}

/// Branch shapes the front ends produce; every architecture can realise
/// these three.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondShape {
    /// Branch when `reg != 0` (`eq == false`) or `reg == 0` (`eq == true`).
    RegZero {
        /// Tested register (physical name).
        reg: String,
        /// Branch on equality with zero?
        eq: bool,
    },
    /// Compare a register with an immediate; branch on (in)equality.
    CmpImm {
        /// Compared register (physical name).
        reg: String,
        /// Immediate.
        imm: i64,
        /// Branch on equality?
        eq: bool,
    },
    /// Compare two registers; branch on (in)equality.
    CmpReg {
        /// First register.
        a: String,
        /// Second register.
        b: String,
        /// Branch on equality?
        eq: bool,
    },
}

/// Access width class relevant to code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessWidth {
    /// Up to 64 bits: one register.
    Scalar,
    /// 128 bits: a register pair.
    Pair,
}

/// What one back end must provide. The generic walker calls these in
/// program order; implementations append to their instruction buffer.
pub trait Emitter {
    /// The physical register pool, in allocation order.
    fn pool(&self) -> &'static [&'static str];

    /// Canonicalises a physical register name to the [`Reg`] the ISA
    /// lowering will use (e.g. AArch64 `w0` → `X0`).
    fn norm(&self, phys: &str) -> Reg;

    /// Emits a label.
    fn label(&mut self, l: &str);
    /// Emits an unconditional jump.
    fn jump(&mut self, l: &str);
    /// Emits a conditional branch.
    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()>;
    /// `dst ← imm`.
    fn mov_imm(&mut self, dst: &str, imm: i64);
    /// `dst ← src`.
    fn mov_reg(&mut self, dst: &str, src: &str);
    /// `dst ← a ⊕ b` for ⊕ ∈ {xor, add, sub, and, or}.
    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()>;
    /// Materialises `&sym` into `dst`. `pic` selects GOT/TOC/literal-pool
    /// loads (memory traffic) over direct materialisation.
    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool);
    /// A load with the given C11 ordering.
    fn load(&mut self, width: AccessWidth, dst: &str, addr: &str, ord: Ord11, readonly: bool)
        -> Result<()>;
    /// A store with the given C11 ordering.
    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()>;
    /// An atomic RMW. `dst = None` means the old value is unused — the
    /// paper's §IV-B bug paths live behind this case.
    #[allow(clippy::too_many_arguments)] // mirrors the C11 RMW shape
    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()>;
    /// A thread fence.
    fn fence(&mut self, ord: Ord11) -> Result<()>;
}

/// Per-thread emission context: register allocation and label generation.
pub struct ThreadCtx {
    map: BTreeMap<Reg, String>,
    next: usize,
    labels: usize,
    /// Released scratch registers, reused only once the pool is dry — so
    /// small tests keep distinct registers (maximising what the s2l
    /// optimiser can lift into litmus `reg_init`) while large tests degrade
    /// gracefully instead of dying with an internal compiler error.
    free: Vec<String>,
}

impl ThreadCtx {
    /// A fresh context.
    pub fn new() -> ThreadCtx {
        ThreadCtx {
            map: BTreeMap::new(),
            next: 0,
            labels: 0,
            free: Vec::new(),
        }
    }

    /// The physical register for an IR register, allocating on first use.
    ///
    /// # Errors
    ///
    /// Fails when the pool is exhausted (internal compiler error — exactly
    /// what a register allocator without spilling produces).
    pub fn phys(&mut self, r: &Reg, pool: &'static [&'static str]) -> Result<String> {
        if let Some(p) = self.map.get(r) {
            return Ok(p.clone());
        }
        let p = pool
            .get(self.next)
            .ok_or_else(|| Error::InternalCompilerError("out of registers".into()))?;
        self.next += 1;
        self.map.insert(r.clone(), (*p).to_string());
        Ok((*p).to_string())
    }

    /// A fresh scratch register: a brand-new pool entry while any remain,
    /// else a recycled released scratch.
    ///
    /// # Errors
    ///
    /// Fails when both the pool and the free list are exhausted.
    pub fn fresh(&mut self, pool: &'static [&'static str]) -> Result<String> {
        if let Some(p) = pool.get(self.next) {
            self.next += 1;
            return Ok((*p).to_string());
        }
        self.free
            .pop()
            .ok_or_else(|| Error::InternalCompilerError("out of registers".into()))
    }

    /// Returns a scratch register to the free list.
    pub fn release(&mut self, reg: String) {
        self.free.push(reg);
    }

    /// A fresh local label.
    pub fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }

    /// The final IR-register → physical-register assignment.
    pub fn assignments(&self) -> impl Iterator<Item = (&Reg, &String)> {
        self.map.iter()
    }
}

impl Default for ThreadCtx {
    fn default() -> Self {
        ThreadCtx::new()
    }
}

/// Walks a thread body, driving the emitter. Returns the context (whose
/// register map feeds the compiled test's state mapping).
///
/// `frame` enables `-O0` behaviour: every materialised address and loaded
/// value is *spilled* to the thread's stack frame and reloaded before use.
/// The frame is modelled as a single location — litmus extraction cannot
/// disambiguate `sp`-relative slots, matching herd's treatment of computed
/// addresses — and this extra memory traffic is what makes unoptimised
/// compiled tests explode under simulation (paper §IV-E / Fig. 11).
///
/// # Errors
///
/// Propagates emitter errors; rejects IR forms no C11 program produces
/// (register-indirect addressing, store-exclusives).
pub fn emit_thread<E: Emitter>(
    e: &mut E,
    test: &LitmusTest,
    body: &[Instr],
    pic: bool,
    frame: Option<&Loc>,
) -> Result<ThreadCtx> {
    let mut cx = ThreadCtx::new();
    let pool = e.pool();
    // Spills a register to the frame slot (plain str/ldr traffic).
    let spill = |e: &mut E, cx: &mut ThreadCtx, reg: &str| -> Result<()> {
        if let Some(f) = frame {
            let fa = cx.fresh(pool)?;
            e.addr_of(&fa, f, false);
            e.store(AccessWidth::Scalar, reg, &fa, Ord11::Na)?;
            cx.release(fa);
        }
        Ok(())
    };
    // Reloads a just-spilled value from the frame into a fresh register,
    // returning the register actually used for the access.
    let reload = |e: &mut E, cx: &mut ThreadCtx, reg: &str| -> Result<String> {
        if let Some(f) = frame {
            let fa = cx.fresh(pool)?;
            e.addr_of(&fa, f, false);
            let r2 = cx.fresh(pool)?;
            e.load(AccessWidth::Scalar, &r2, &fa, Ord11::Na, false)?;
            cx.release(fa);
            Ok(r2)
        } else {
            Ok(reg.to_string())
        }
    };
    for ins in body {
        match ins {
            Instr::Label(l) => e.label(l),
            Instr::Jump(l) => e.jump(l),
            Instr::Nop => {}
            Instr::Assign { dst, expr } => {
                let d = cx.phys(dst, pool)?;
                eval_expr(e, &mut cx, expr, &d, pic)?;
            }
            Instr::BranchIf { cond, target } => {
                let shape = cond_shape(e, &mut cx, cond, false, pic)?;
                e.branch(&shape, target)?;
            }
            Instr::Fence { annot } => e.fence(ord_of(*annot))?,
            Instr::Load { dst, addr, annot } => {
                let (loc, width, readonly) = resolve(test, addr)?;
                let a = cx.fresh(pool)?;
                e.addr_of(&a, &loc, pic);
                spill(e, &mut cx, &a)?;
                let a2 = reload(e, &mut cx, &a)?;
                let d = cx.phys(dst, pool)?;
                e.load(width, &d, &a2, ord_of(*annot), readonly)?;
                spill(e, &mut cx, &d)?;
                if a2 != a {
                    cx.release(a2);
                }
                cx.release(a);
            }
            Instr::Store { addr, val, annot } => {
                let (loc, width, _) = resolve(test, addr)?;
                let a = cx.fresh(pool)?;
                e.addr_of(&a, &loc, pic);
                spill(e, &mut cx, &a)?;
                let a2 = reload(e, &mut cx, &a)?;
                let v = expr_to_reg(e, &mut cx, val, pic)?;
                e.store(width, &v, &a2, ord_of(*annot))?;
                if a2 != a {
                    cx.release(a2);
                }
                cx.release(a);
            }
            Instr::Rmw {
                dst,
                addr,
                op,
                operand,
                annot,
                has_read_event: _,
            } => {
                let (loc, _, _) = resolve(test, addr)?;
                let a = cx.fresh(pool)?;
                e.addr_of(&a, &loc, pic);
                let o = expr_to_reg(e, &mut cx, operand, pic)?;
                let x = match op {
                    RmwOp::CmpXchg { expected } => {
                        Some(expr_to_reg(e, &mut cx, expected, pic)?)
                    }
                    _ => None,
                };
                let d = match dst {
                    Some(r) => Some(cx.phys(r, pool)?),
                    None => None,
                };
                // `cx` and `e` are disjoint, so the emitter can pull fresh
                // scratch registers (for retry-loop status) on demand.
                let mut next = || cx_fresh(&mut cx, pool);
                e.rmw(op, d.as_deref(), &o, x.as_deref(), &a, ord_of(*annot), &mut next)?;
            }
            Instr::StoreExcl { .. } => {
                return Err(Error::Unsupported(
                    "store-exclusive is not a C11 source construct".into(),
                ))
            }
        }
    }
    Ok(cx)
}

fn cx_fresh(cx: &mut ThreadCtx, pool: &'static [&'static str]) -> Result<String> {
    cx.fresh(pool)
}

fn resolve(test: &LitmusTest, addr: &AddrExpr) -> Result<(Loc, AccessWidth, bool)> {
    match addr {
        AddrExpr::Sym(l) => {
            let d = test
                .loc_decl(l)
                .ok_or_else(|| Error::IllFormed(format!("undeclared location `{l}`")))?;
            let width = if d.width == Width::W128 {
                AccessWidth::Pair
            } else {
                AccessWidth::Scalar
            };
            Ok((l.clone(), width, d.readonly))
        }
        AddrExpr::Reg(r) => Err(Error::Unsupported(format!(
            "register-indirect source access via `{r}`"
        ))),
    }
}

/// Evaluates an expression into `dst`.
fn eval_expr<E: Emitter>(
    e: &mut E,
    cx: &mut ThreadCtx,
    expr: &Expr,
    dst: &str,
    pic: bool,
) -> Result<()> {
    match expr {
        Expr::Lit(Val::Int(i)) => {
            e.mov_imm(dst, *i);
            Ok(())
        }
        Expr::Lit(Val::Addr(l)) => {
            e.addr_of(dst, l, pic);
            Ok(())
        }
        Expr::Reg(r) => {
            let s = cx.phys(r, e.pool())?;
            e.mov_reg(dst, &s);
            Ok(())
        }
        Expr::Bin(op, a, b) => {
            let ra = expr_to_reg(e, cx, a, pic)?;
            let rb = expr_to_reg(e, cx, b, pic)?;
            e.bin_op(*op, dst, &ra, &rb)
        }
    }
}

/// Evaluates an expression, reusing registers when it already is one.
fn expr_to_reg<E: Emitter>(
    e: &mut E,
    cx: &mut ThreadCtx,
    expr: &Expr,
    pic: bool,
) -> Result<String> {
    if let Expr::Reg(r) = expr {
        return cx.phys(r, e.pool());
    }
    let d = cx.fresh(e.pool())?;
    eval_expr(e, cx, expr, &d, pic)?;
    Ok(d)
}

/// Normalises a branch condition into a [`CondShape`]. `negate` flips the
/// sense (used to unfold `(x == 0)` wrappers).
fn cond_shape<E: Emitter>(
    e: &mut E,
    cx: &mut ThreadCtx,
    cond: &Expr,
    negate: bool,
    pic: bool,
) -> Result<CondShape> {
    match cond {
        // (x == 0) ≡ !x ; (x != 0) ≡ x — unfold recursively.
        Expr::Bin(BinOp::Eq, x, z) if matches!(**z, Expr::Lit(Val::Int(0))) => {
            cond_shape(e, cx, x, !negate, pic)
        }
        Expr::Bin(BinOp::Ne, x, z) if matches!(**z, Expr::Lit(Val::Int(0))) => {
            cond_shape(e, cx, x, negate, pic)
        }
        Expr::Reg(r) => Ok(CondShape::RegZero {
            reg: cx.phys(r, e.pool())?,
            // plain register is "branch if non-zero"; negation tests zero.
            eq: negate,
        }),
        Expr::Bin(BinOp::Eq, a, b) | Expr::Bin(BinOp::Ne, a, b) => {
            let is_eq = matches!(cond, Expr::Bin(BinOp::Eq, _, _)) != negate;
            match (&**a, &**b) {
                (Expr::Reg(r), Expr::Lit(Val::Int(i))) | (Expr::Lit(Val::Int(i)), Expr::Reg(r)) => {
                    Ok(CondShape::CmpImm {
                        reg: cx.phys(r, e.pool())?,
                        imm: *i,
                        eq: is_eq,
                    })
                }
                (Expr::Reg(ra), Expr::Reg(rb)) => Ok(CondShape::CmpReg {
                    a: cx.phys(ra, e.pool())?,
                    b: cx.phys(rb, e.pool())?,
                    eq: is_eq,
                }),
                _ => {
                    // General case: evaluate both sides.
                    let ra = expr_to_reg(e, cx, a, pic)?;
                    let rb = expr_to_reg(e, cx, b, pic)?;
                    Ok(CondShape::CmpReg {
                        a: ra,
                        b: rb,
                        eq: is_eq,
                    })
                }
            }
        }
        other => Err(Error::Unsupported(format!(
            "branch condition shape `{other}`"
        ))),
    }
}
