//! The Armv7 back end: barrier-based mappings (`DMB ISH` everywhere) and
//! `LDREX`/`STREX` reservation loops.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::armv7::ArmInstr;
use telechat_isa::SymRef;
use telechat_litmus::{BinOp, RmwOp};

/// Emits Armv7 code for one thread.
#[derive(Debug, Default)]
pub struct ArmEmitter {
    /// The emitted instructions.
    pub code: Vec<ArmInstr>,
    labels: usize,
}

impl ArmEmitter {
    /// A fresh emitter.
    pub fn new() -> ArmEmitter {
        ArmEmitter::default()
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }

    fn dmb(&mut self) {
        self.code.push(ArmInstr::Dmb);
    }
}

const POOL: &[&str] = &[
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12",
];

impl Emitter for ArmEmitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        Reg::new(phys.to_ascii_uppercase())
    }

    fn label(&mut self, l: &str) {
        self.code.push(ArmInstr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(ArmInstr::B(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        match shape {
            CondShape::RegZero { reg, eq } => {
                self.code.push(ArmInstr::CmpImm {
                    a: reg.clone(),
                    imm: 0,
                });
                self.code.push(if *eq {
                    ArmInstr::Beq(target.to_string())
                } else {
                    ArmInstr::Bne(target.to_string())
                });
            }
            CondShape::CmpImm { reg, imm, eq } => {
                self.code.push(ArmInstr::CmpImm {
                    a: reg.clone(),
                    imm: *imm,
                });
                self.code.push(if *eq {
                    ArmInstr::Beq(target.to_string())
                } else {
                    ArmInstr::Bne(target.to_string())
                });
            }
            CondShape::CmpReg { a, b, eq } => {
                self.code.push(ArmInstr::CmpReg {
                    a: a.clone(),
                    b: b.clone(),
                });
                self.code.push(if *eq {
                    ArmInstr::Beq(target.to_string())
                } else {
                    ArmInstr::Bne(target.to_string())
                });
            }
        }
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(ArmInstr::MovImm {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        self.code.push(ArmInstr::MovReg {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(ArmInstr::Eor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => self.code.push(ArmInstr::AddReg {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            other => return Err(Error::Unsupported(format!("armv7 ALU `{other}`"))),
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool) {
        if pic {
            // Literal-pool load: a real memory read of `lit.<sym>`.
            self.code.push(ArmInstr::LdrLit {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        } else {
            self.code.push(ArmInstr::MovSym {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        }
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        ord: Ord11,
        _readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on Armv7".into()));
        }
        if ord == Ord11::Sc {
            self.dmb();
        }
        self.code.push(ArmInstr::Ldr {
            dst: dst.to_string(),
            base: addr.to_string(),
        });
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.dmb();
        }
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on Armv7".into()));
        }
        if matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc) {
            self.dmb();
        }
        self.code.push(ArmInstr::Str {
            src: src.to_string(),
            base: addr.to_string(),
        });
        if ord == Ord11::Sc {
            self.dmb();
        }
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        let retry = self.fresh_label("retry");
        let done = self.fresh_label("done");
        if matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc) {
            self.dmb();
        }
        let old = fresh()?;
        let status = fresh()?;
        self.code.push(ArmInstr::Label(retry.clone()));
        self.code.push(ArmInstr::Ldrex {
            dst: old.clone(),
            base: addr.to_string(),
        });
        let new = match op {
            RmwOp::FetchAdd => {
                let n = fresh()?;
                self.code.push(ArmInstr::AddReg {
                    dst: n.clone(),
                    a: old.clone(),
                    b: operand.to_string(),
                });
                n
            }
            RmwOp::Swap => operand.to_string(),
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                self.code.push(ArmInstr::CmpReg {
                    a: old.clone(),
                    b: e.to_string(),
                });
                self.code.push(ArmInstr::Bne(done.clone()));
                operand.to_string()
            }
            other => return Err(Error::Unsupported(format!("armv7 RMW {other:?}"))),
        };
        self.code.push(ArmInstr::Strex {
            status: status.clone(),
            src: new,
            base: addr.to_string(),
        });
        self.code.push(ArmInstr::CmpImm {
            a: status,
            imm: 0,
        });
        self.code.push(ArmInstr::Bne(retry));
        self.code.push(ArmInstr::Label(done));
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.dmb();
        }
        if let Some(d) = dst {
            self.code.push(ArmInstr::MovReg {
                dst: d.to_string(),
                src: old,
            });
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        if !matches!(ord, Ord11::Na | Ord11::Rlx) {
            self.dmb();
        }
        Ok(())
    }
}
