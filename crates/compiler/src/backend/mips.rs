//! The MIPS back end: `SYNC` everywhere and `LL`/`SC` loops.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::mips::MipsInstr;
use telechat_isa::SymRef;
use telechat_litmus::{BinOp, RmwOp};

/// Emits MIPS64 code for one thread.
#[derive(Debug, Default)]
pub struct MipsEmitter {
    /// The emitted instructions.
    pub code: Vec<MipsInstr>,
    labels: usize,
}

impl MipsEmitter {
    /// A fresh emitter.
    pub fn new() -> MipsEmitter {
        MipsEmitter::default()
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }

    fn sync(&mut self) {
        self.code.push(MipsInstr::Sync);
    }
}

const POOL: &[&str] = &[
    "$2", "$3", "$4", "$5", "$6", "$7", "$8", "$9", "$10", "$11", "$12", "$13", "$14", "$15",
];

/// Reserved scratch for immediate compares (assembler temporary).
const BR_SCRATCH: &str = "$at";

impl Emitter for MipsEmitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        Reg::new(phys)
    }

    fn label(&mut self, l: &str) {
        self.code.push(MipsInstr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(MipsInstr::B(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        let (a, b, eq) = match shape {
            CondShape::RegZero { reg, eq } => (reg.clone(), "$0".to_string(), *eq),
            CondShape::CmpImm { reg, imm, eq } => {
                if *imm == 0 {
                    (reg.clone(), "$0".to_string(), *eq)
                } else {
                    self.code.push(MipsInstr::Li {
                        dst: BR_SCRATCH.into(),
                        imm: *imm,
                    });
                    (reg.clone(), BR_SCRATCH.to_string(), *eq)
                }
            }
            CondShape::CmpReg { a, b, eq } => (a.clone(), b.clone(), *eq),
        };
        self.code.push(if eq {
            MipsInstr::Beq {
                a,
                b,
                label: target.to_string(),
            }
        } else {
            MipsInstr::Bne {
                a,
                b,
                label: target.to_string(),
            }
        });
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(MipsInstr::Li {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        self.code.push(MipsInstr::Move {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(MipsInstr::Xor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => self.code.push(MipsInstr::Addu {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            other => return Err(Error::Unsupported(format!("mips ALU `{other}`"))),
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool) {
        if pic {
            self.code.push(MipsInstr::LdGot {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        } else {
            self.code.push(MipsInstr::Dla {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        }
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        ord: Ord11,
        _readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on MIPS".into()));
        }
        if ord == Ord11::Sc {
            self.sync();
        }
        self.code.push(MipsInstr::Lw {
            dst: dst.to_string(),
            base: addr.to_string(),
        });
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.sync();
        }
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on MIPS".into()));
        }
        if matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc) {
            self.sync();
        }
        self.code.push(MipsInstr::Sw {
            src: src.to_string(),
            base: addr.to_string(),
        });
        if ord == Ord11::Sc {
            self.sync();
        }
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        if matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc) {
            self.sync();
        }
        let retry = self.fresh_label("retry");
        let done = self.fresh_label("done");
        let old = fresh()?;
        let tmp = fresh()?;
        self.code.push(MipsInstr::Label(retry.clone()));
        self.code.push(MipsInstr::Ll {
            dst: old.clone(),
            base: addr.to_string(),
        });
        match op {
            RmwOp::FetchAdd => {
                self.code.push(MipsInstr::Addu {
                    dst: tmp.clone(),
                    a: old.clone(),
                    b: operand.to_string(),
                });
            }
            RmwOp::Swap => {
                self.mov_reg(&tmp, operand);
            }
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                self.code.push(MipsInstr::Bne {
                    a: old.clone(),
                    b: e.to_string(),
                    label: done.clone(),
                });
                self.mov_reg(&tmp, operand);
            }
            other => return Err(Error::Unsupported(format!("mips RMW {other:?}"))),
        }
        // MIPS SC: tmp ← 1 on success, 0 on failure.
        self.code.push(MipsInstr::Sc {
            src: tmp.clone(),
            base: addr.to_string(),
        });
        self.code.push(MipsInstr::Beq {
            a: tmp,
            b: "$0".into(),
            label: retry,
        });
        self.code.push(MipsInstr::Label(done));
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.sync();
        }
        if let Some(d) = dst {
            self.mov_reg(d, &old);
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        if !matches!(ord, Ord11::Na | Ord11::Rlx) {
            self.sync();
        }
        Ok(())
    }
}
