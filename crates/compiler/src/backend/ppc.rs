//! The PowerPC back end: `SYNC`/`LWSYNC` mappings and `LWARX`/`STWCX.`
//! reservation loops.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::ppc::PpcInstr;
use telechat_isa::SymRef;
use telechat_litmus::{BinOp, RmwOp};

/// Emits PPC64 code for one thread.
#[derive(Debug, Default)]
pub struct PpcEmitter {
    /// The emitted instructions.
    pub code: Vec<PpcInstr>,
    labels: usize,
}

impl PpcEmitter {
    /// A fresh emitter.
    pub fn new() -> PpcEmitter {
        PpcEmitter::default()
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }
}

const POOL: &[&str] = &[
    "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r14", "r15", "r16", "r17",
    "r18", "r19", "r20",
];

impl Emitter for PpcEmitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        Reg::new(phys.to_ascii_lowercase())
    }

    fn label(&mut self, l: &str) {
        self.code.push(PpcInstr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(PpcInstr::B(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        let eq = match shape {
            CondShape::RegZero { reg, eq } => {
                self.code.push(PpcInstr::Cmpwi {
                    a: reg.clone(),
                    imm: 0,
                });
                *eq
            }
            CondShape::CmpImm { reg, imm, eq } => {
                self.code.push(PpcInstr::Cmpwi {
                    a: reg.clone(),
                    imm: *imm,
                });
                *eq
            }
            CondShape::CmpReg { a, b, eq } => {
                self.code.push(PpcInstr::Cmpw {
                    a: a.clone(),
                    b: b.clone(),
                });
                *eq
            }
        };
        self.code.push(if eq {
            PpcInstr::Beq(target.to_string())
        } else {
            PpcInstr::Bne(target.to_string())
        });
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(PpcInstr::Li {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        self.code.push(PpcInstr::Mr {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(PpcInstr::Xor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => self.code.push(PpcInstr::Add {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            other => return Err(Error::Unsupported(format!("ppc ALU `{other}`"))),
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool) {
        if pic {
            // TOC-slot load: a memory read of `toc.<sym>`.
            self.code.push(PpcInstr::LdToc {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        } else {
            self.code.push(PpcInstr::AddisToc {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        }
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        ord: Ord11,
        _readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on PPC".into()));
        }
        if ord == Ord11::Sc {
            self.code.push(PpcInstr::Sync);
        }
        self.code.push(PpcInstr::Lwz {
            dst: dst.to_string(),
            base: addr.to_string(),
        });
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.code.push(PpcInstr::Lwsync);
        }
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on PPC".into()));
        }
        match ord {
            Ord11::Rel | Ord11::AcqRel => self.code.push(PpcInstr::Lwsync),
            Ord11::Sc => self.code.push(PpcInstr::Sync),
            _ => {}
        }
        self.code.push(PpcInstr::Stw {
            src: src.to_string(),
            base: addr.to_string(),
        });
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        match ord {
            Ord11::Rel | Ord11::AcqRel => self.code.push(PpcInstr::Lwsync),
            Ord11::Sc => self.code.push(PpcInstr::Sync),
            _ => {}
        }
        let retry = self.fresh_label("retry");
        let done = self.fresh_label("done");
        let old = fresh()?;
        self.code.push(PpcInstr::Label(retry.clone()));
        self.code.push(PpcInstr::Lwarx {
            dst: old.clone(),
            base: addr.to_string(),
        });
        let new = match op {
            RmwOp::FetchAdd => {
                let n = fresh()?;
                self.code.push(PpcInstr::Add {
                    dst: n.clone(),
                    a: old.clone(),
                    b: operand.to_string(),
                });
                n
            }
            RmwOp::Swap => operand.to_string(),
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                self.code.push(PpcInstr::Cmpw {
                    a: old.clone(),
                    b: e.to_string(),
                });
                self.code.push(PpcInstr::Bne(done.clone()));
                operand.to_string()
            }
            other => return Err(Error::Unsupported(format!("ppc RMW {other:?}"))),
        };
        self.code.push(PpcInstr::Stwcx {
            src: new,
            base: addr.to_string(),
        });
        self.code.push(PpcInstr::Bne(retry));
        self.code.push(PpcInstr::Label(done));
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.code.push(PpcInstr::Lwsync);
        }
        if let Some(d) = dst {
            self.mov_reg(d, &old);
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        match ord {
            Ord11::Na | Ord11::Rlx => {}
            Ord11::Acq | Ord11::Rel | Ord11::AcqRel => self.code.push(PpcInstr::Lwsync),
            Ord11::Sc => self.code.push(PpcInstr::Sync),
        }
        Ok(())
    }
}
