//! The x86-64 back end: TSO needs no barriers except for seq-cst stores
//! and fences; RMWs are `LOCK`-prefixed.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::x86::{Mem, X86Instr};
use telechat_isa::SymRef;
use telechat_litmus::{BinOp, RmwOp};

/// Emits x86-64 code for one thread.
#[derive(Debug, Default)]
pub struct X86Emitter {
    /// The emitted instructions.
    pub code: Vec<X86Instr>,
}

impl X86Emitter {
    /// A fresh emitter.
    pub fn new() -> X86Emitter {
        X86Emitter::default()
    }
}

const POOL: &[&str] = &[
    "ebx", "ecx", "edx", "esi", "edi", "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d",
    "r15d",
];

fn canon(name: &str) -> &'static str {
    match name {
        "eax" => "RAX",
        "ebx" => "RBX",
        "ecx" => "RCX",
        "edx" => "RDX",
        "esi" => "RSI",
        "edi" => "RDI",
        "r8d" => "R8D",
        "r9d" => "R9D",
        "r10d" => "R10D",
        "r11d" => "R11D",
        "r12d" => "R12D",
        "r13d" => "R13D",
        "r14d" => "R14D",
        "r15d" => "R15D",
        _ => "R15D",
    }
}

impl Emitter for X86Emitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        Reg::new(canon(phys))
    }

    fn label(&mut self, l: &str) {
        self.code.push(X86Instr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(X86Instr::Jmp(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        let (a, imm_or_b, eq) = match shape {
            CondShape::RegZero { reg, eq } => (reg.clone(), Err(0i64), *eq),
            CondShape::CmpImm { reg, imm, eq } => (reg.clone(), Err(*imm), *eq),
            CondShape::CmpReg { a, b, eq } => (a.clone(), Ok(b.clone()), *eq),
        };
        match imm_or_b {
            Err(imm) => self.code.push(X86Instr::CmpImm { a, imm }),
            Ok(b) => {
                // cmp reg, reg — model via sub-free compare: x86 has cmp r/r;
                // reuse CmpImm encoding is wrong, so emit xor-free sequence:
                // mov scratch? Simplest faithful form: cmp a, b is standard;
                // our ISA only has cmp-with-imm, so compute a-b into FLAGS
                // through the xor/cmp pair is overkill — extend via Xor-based
                // equality: xor sets no flags here. We instead emit
                // `cmp a, 0` after subtracting — but Sub is absent too.
                // Pragmatic: materialise b into FLAGS comparison by two
                // instructions: mov eax, b ; cmp a, eax is unsupported.
                // The C front end only produces reg-imm compares after
                // normalisation, so reg-reg compares indicate an
                // unsupported shape.
                return Err(Error::Unsupported(format!(
                    "x86 register-register compare ({a} vs {b})"
                )));
            }
        }
        self.code.push(if eq {
            X86Instr::Je(target.to_string())
        } else {
            X86Instr::Jne(target.to_string())
        });
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(X86Instr::MovImm {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        // x86 mov reg, reg — reuse MovImm? No: model with Add-from-zero is
        // silly; use Xor-zero then Add. The ISA has no reg-reg mov, so
        // compose: xor dst, dst, dst ; add dst, src.
        self.code.push(X86Instr::Xor {
            dst: dst.to_string(),
            a: dst.to_string(),
            b: dst.to_string(),
        });
        self.code.push(X86Instr::Add {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(X86Instr::Xor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => {
                self.mov_reg(dst, a);
                self.code.push(X86Instr::Add {
                    dst: dst.to_string(),
                    src: b.to_string(),
                });
            }
            other => return Err(Error::Unsupported(format!("x86 ALU `{other}`"))),
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, _pic: bool) {
        // x86 reaches globals RIP-relatively — LEA carries no memory
        // traffic, which keeps x86 rows cheap (paper Table IV).
        self.code.push(X86Instr::Lea {
            dst: dst.to_string(),
            sym: SymRef::Sym(sym.clone()),
        });
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        _ord: Ord11,
        _readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on x86-64".into()));
        }
        // Plain MOV: x86 loads are acquire by TSO.
        self.code.push(X86Instr::MovLoad {
            dst: dst.to_string(),
            src: Mem::Reg(addr.to_string()),
        });
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on x86-64".into()));
        }
        self.code.push(X86Instr::MovStore {
            dst: Mem::Reg(addr.to_string()),
            src: src.to_string(),
        });
        // Seq-cst stores need the store buffer drained: MOV; MFENCE.
        if ord == Ord11::Sc {
            self.code.push(X86Instr::Mfence);
        }
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        _ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        // All orderings coincide on x86: LOCK'd operations are full fences.
        match op {
            RmwOp::FetchAdd => {
                let tmp = fresh()?;
                self.mov_reg(&tmp, operand);
                self.code.push(X86Instr::LockXadd {
                    mem: Mem::Reg(addr.to_string()),
                    reg: tmp.clone(),
                });
                if let Some(d) = dst {
                    self.mov_reg(d, &tmp);
                }
            }
            RmwOp::Swap => {
                let tmp = fresh()?;
                self.mov_reg(&tmp, operand);
                self.code.push(X86Instr::Xchg {
                    mem: Mem::Reg(addr.to_string()),
                    reg: tmp.clone(),
                });
                if let Some(d) = dst {
                    self.mov_reg(d, &tmp);
                }
            }
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                // Expected travels in EAX by the cmpxchg convention.
                self.code.push(X86Instr::Xor {
                    dst: "eax".into(),
                    a: "eax".into(),
                    b: "eax".into(),
                });
                self.code.push(X86Instr::Add {
                    dst: "eax".into(),
                    src: e.to_string(),
                });
                self.code.push(X86Instr::LockCmpxchg {
                    mem: Mem::Reg(addr.to_string()),
                    new: operand.to_string(),
                });
                if let Some(d) = dst {
                    self.mov_reg(d, "eax");
                }
            }
            other => return Err(Error::Unsupported(format!("x86 RMW {other:?}"))),
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        // Acquire/release fences are compiler barriers only on TSO.
        if ord == Ord11::Sc {
            self.code.push(X86Instr::Mfence);
        }
        Ok(())
    }
}
