//! The AArch64 back end — the flagship target, carrying every versioned
//! bug path of the paper's §IV-B/§IV-C studies.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use crate::target::Target;
use crate::version::{BugId, CompilerId};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::aarch64::{norm_reg, A64Instr, DmbKind};
use telechat_isa::{RmwOrd, SymRef, PAIR_SHIFT};
use telechat_litmus::{BinOp, RmwOp};

/// Emits AArch64 code for one thread.
pub struct A64Emitter {
    /// The emitted instructions.
    pub code: Vec<A64Instr>,
    compiler: CompilerId,
    target: Target,
    labels: usize,
}

impl A64Emitter {
    /// A fresh emitter for the given compiler and target.
    pub fn new(compiler: CompilerId, target: Target) -> A64Emitter {
        A64Emitter {
            code: Vec::new(),
            compiler,
            target,
            labels: 0,
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }

    fn dmb(&mut self, k: DmbKind) {
        self.code.push(A64Instr::Dmb(k));
    }

    fn rmw_ord(ord: Ord11) -> RmwOrd {
        match ord {
            Ord11::Na | Ord11::Rlx => RmwOrd::Rlx,
            Ord11::Acq => RmwOrd::Acq,
            Ord11::Rel => RmwOrd::Rel,
            Ord11::AcqRel | Ord11::Sc => RmwOrd::AcqRel,
        }
    }

    /// The exclusive-loop fallback for pre-LSE targets (and the structure
    /// CAS-based RMWs always had). Reads always live in a destination
    /// register here, so the §IV-B bugs cannot occur on this path —
    /// matching the paper ("past versions … induce this bug when targeting
    /// Armv8.1-a with the Large-Systems Extension").
    #[allow(clippy::too_many_arguments)]
    fn excl_loop(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        let retry = self.fresh_label("retry");
        let done = self.fresh_label("done");
        let old = fresh()?;
        let status = fresh()?;
        self.code.push(A64Instr::Label(retry.clone()));
        let acq = matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc);
        let rel = matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc);
        self.code.push(if acq {
            A64Instr::Ldaxr {
                dst: old.clone(),
                base: x(addr),
            }
        } else {
            A64Instr::Ldxr {
                dst: old.clone(),
                base: x(addr),
            }
        });
        let new: String = match op {
            RmwOp::FetchAdd => {
                let n = fresh()?;
                self.code.push(A64Instr::AddReg {
                    dst: n.clone(),
                    a: old.clone(),
                    b: operand.to_string(),
                });
                n
            }
            RmwOp::Swap => operand.to_string(),
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected value".into())
                })?;
                self.code.push(A64Instr::CmpReg {
                    a: old.clone(),
                    b: e.to_string(),
                });
                self.code.push(A64Instr::Bne(done.clone()));
                operand.to_string()
            }
            other => {
                return Err(Error::Unsupported(format!(
                    "aarch64 exclusive loop for {other:?}"
                )))
            }
        };
        self.code.push(if rel {
            A64Instr::Stlxr {
                status: status.clone(),
                src: new,
                base: x(addr),
            }
        } else {
            A64Instr::Stxr {
                status: status.clone(),
                src: new,
                base: x(addr),
            }
        });
        self.code.push(A64Instr::Cbnz {
            src: status,
            label: retry,
        });
        self.code.push(A64Instr::Label(done));
        if let Some(d) = dst {
            self.code.push(A64Instr::MovReg {
                dst: d.to_string(),
                src: old,
            });
        }
        Ok(())
    }

    /// Emits the LDXP/STXP loop that implements a 128-bit atomic load on
    /// targets without LSE2 — and, crucially, *stores back* what it read,
    /// which crashes on `const` (read-only) data: bug [36].
    fn pair_load_loop(&mut self, dst: &str, addr: &str, ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>) -> Result<()> {
        let retry = self.fresh_label("qretry");
        let hi = fresh()?;
        let status = fresh()?;
        self.code.push(A64Instr::Label(retry.clone()));
        self.code.push(A64Instr::Ldxp {
            dst1: x(dst),
            dst2: x(&hi),
            base: x(addr),
        });
        self.code.push(A64Instr::Stlxp {
            status: status.clone(),
            src1: x(dst),
            src2: x(&hi),
            base: x(addr),
        });
        self.code.push(A64Instr::Cbnz {
            src: status,
            label: retry,
        });
        if matches!(ord, Ord11::Acq | Ord11::Sc) {
            self.dmb(DmbKind::Ish);
        }
        Ok(())
    }
}

/// The x-register view of a pool name (`w5` → `x5`).
fn x(name: &str) -> String {
    name.replacen('w', "x", 1)
}

const POOL: &[&str] = &[
    "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9", "w10", "w11", "w12", "w13",
    "w14", "w15", "w16", "w17", "w19", "w20", "w21", "w22", "w23", "w24", "w25", "w26",
];

impl Emitter for A64Emitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        norm_reg(phys)
    }

    fn label(&mut self, l: &str) {
        self.code.push(A64Instr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(A64Instr::B(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        match shape {
            CondShape::RegZero { reg, eq } => self.code.push(if *eq {
                A64Instr::Cbz {
                    src: reg.clone(),
                    label: target.to_string(),
                }
            } else {
                A64Instr::Cbnz {
                    src: reg.clone(),
                    label: target.to_string(),
                }
            }),
            CondShape::CmpImm { reg, imm, eq } => {
                self.code.push(A64Instr::CmpImm {
                    a: reg.clone(),
                    imm: *imm,
                });
                self.code.push(if *eq {
                    A64Instr::Beq(target.to_string())
                } else {
                    A64Instr::Bne(target.to_string())
                });
            }
            CondShape::CmpReg { a, b, eq } => {
                self.code.push(A64Instr::CmpReg {
                    a: a.clone(),
                    b: b.clone(),
                });
                self.code.push(if *eq {
                    A64Instr::Beq(target.to_string())
                } else {
                    A64Instr::Bne(target.to_string())
                });
            }
        }
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(A64Instr::MovImm {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        self.code.push(A64Instr::MovReg {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(A64Instr::Eor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => self.code.push(A64Instr::AddReg {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            other => {
                return Err(Error::Unsupported(format!(
                    "aarch64 ALU operation `{other}`"
                )))
            }
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool) {
        let d = x(dst);
        if pic {
            // ADRP to the GOT page, then a *load* of the GOT slot — the
            // 2-instruction, 1-memory-event sequence §IV-E's explosion
            // analysis counts ("ADRP …; LDR; LDR/STR").
            let slot = Loc::new(format!("got.{sym}"));
            self.code.push(A64Instr::Adrp {
                dst: d.clone(),
                sym: SymRef::Sym(slot),
            });
            self.code.push(A64Instr::LdrGot {
                dst: d.clone(),
                base: d,
                sym: SymRef::Sym(sym.clone()),
            });
        } else {
            self.code.push(A64Instr::Adrp {
                dst: d.clone(),
                sym: SymRef::Sym(sym.clone()),
            });
            self.code.push(A64Instr::AddLo12 {
                dst: d.clone(),
                src: d,
                sym: SymRef::Sym(sym.clone()),
            });
        }
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        ord: Ord11,
        readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            let use_ldp =
                self.target.ext.lse2 && !self.compiler.has_bug(BugId::ConstAtomicStp);
            // Pre-fix compilers (or pre-LSE2 targets) go through the
            // exclusive loop, which *writes* — the const-atomic crash.
            if !use_ldp {
                if !self.target.ext.lse2 && !readonly {
                    // Correct but loop-based on old targets.
                }
                let mut mk = {
                    let mut n = 0;
                    move || -> Result<String> {
                        n += 1;
                        Ok(format!("w{}", 26 + n))
                    }
                };
                return self.pair_load_loop(dst, addr, ord, &mut mk);
            }
            // LSE2 LDP path (the [56] fix). Sequentially consistent loads
            // need barriers; the [37] bug omits them.
            let sc_barriers =
                ord == Ord11::Sc && !self.compiler.has_bug(BugId::LdpSeqCstNoBarrier);
            if sc_barriers {
                self.dmb(DmbKind::Ish);
            }
            self.code.push(A64Instr::Ldp {
                dst1: x(dst),
                dst2: x(&format!("w{}", 27)),
                base: x(addr),
                single_copy: true,
            });
            if sc_barriers {
                self.dmb(DmbKind::Ish);
            }
            return Ok(());
        }
        let ins = match ord {
            Ord11::Na | Ord11::Rlx | Ord11::Rel => A64Instr::Ldr {
                dst: dst.to_string(),
                base: x(addr),
            },
            Ord11::Acq | Ord11::AcqRel => {
                if self.target.ext.rcpc {
                    // The §IV-F proposal: acquire loads via LDAPR.
                    A64Instr::Ldapr {
                        dst: dst.to_string(),
                        base: x(addr),
                    }
                } else {
                    A64Instr::Ldar {
                        dst: dst.to_string(),
                        base: x(addr),
                    }
                }
            }
            Ord11::Sc => A64Instr::Ldar {
                dst: dst.to_string(),
                base: x(addr),
            },
        };
        self.code.push(ins);
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            // Unpack the composite into a register pair …
            let (lo, hi) = ("w27".to_string(), "w28".to_string());
            self.code.push(A64Instr::AndImm {
                dst: x(&lo),
                src: x(src),
                imm: (1 << PAIR_SHIFT) - 1,
            });
            self.code.push(A64Instr::LsrImm {
                dst: x(&hi),
                src: x(src),
                shift: PAIR_SHIFT,
            });
            // … possibly in the wrong order: bug [39].
            let (s1, s2) = if self.compiler.has_bug(BugId::StpWrongEndian) {
                (hi, lo)
            } else {
                (lo, hi)
            };
            if self.target.ext.lse2 {
                if matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc) {
                    self.dmb(DmbKind::Ish);
                }
                self.code.push(A64Instr::Stp {
                    src1: x(&s1),
                    src2: x(&s2),
                    base: x(addr),
                    single_copy: true,
                });
                if ord == Ord11::Sc {
                    self.dmb(DmbKind::Ish);
                }
            } else {
                let retry = self.fresh_label("spretry");
                self.code.push(A64Instr::Label(retry.clone()));
                self.code.push(A64Instr::Ldxp {
                    dst1: "x29".into(),
                    dst2: "x30".into(),
                    base: x(addr),
                });
                self.code.push(A64Instr::Stlxp {
                    status: "w26".into(),
                    src1: x(&s1),
                    src2: x(&s2),
                    base: x(addr),
                });
                self.code.push(A64Instr::Cbnz {
                    src: "w26".into(),
                    label: retry,
                });
                if ord == Ord11::Sc {
                    self.dmb(DmbKind::Ish);
                }
            }
            return Ok(());
        }
        let ins = match ord {
            Ord11::Na | Ord11::Rlx | Ord11::Acq => A64Instr::Str {
                src: src.to_string(),
                base: x(addr),
            },
            Ord11::Rel | Ord11::AcqRel | Ord11::Sc => A64Instr::Stlr {
                src: src.to_string(),
                base: x(addr),
            },
        };
        self.code.push(ins);
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        if !self.target.ext.lse {
            return self.excl_loop(op, dst, operand, expected, addr, ord, fresh);
        }
        let suffix = Self::rmw_ord(ord);
        match op {
            RmwOp::FetchAdd => {
                let dst = match dst {
                    Some(d) => d.to_string(),
                    None => {
                        if self.compiler.has_bug(BugId::StaddSelect) {
                            // Bug 1 of Fig. 10: STADD selected regardless of
                            // the required ordering.
                            self.code.push(A64Instr::Stadd {
                                src: operand.to_string(),
                                base: x(addr),
                            });
                            return Ok(());
                        } else if self.compiler.has_bug(BugId::DeadRegZeroAtomics) {
                            // Bug 2 of Fig. 10: the dead-register pass
                            // zeroes the destination; LDADD-to-WZR aliases
                            // STADD and the read becomes invisible to
                            // barriers.
                            "wzr".to_string()
                        } else {
                            // Fixed compilers keep a (dead but live-named)
                            // destination so the read stays ordered.
                            fresh()?
                        }
                    }
                };
                self.code.push(A64Instr::Ldadd {
                    ord: suffix,
                    src: operand.to_string(),
                    dst,
                    base: x(addr),
                });
            }
            RmwOp::Swap => {
                let dst = match dst {
                    Some(d) => d.to_string(),
                    None => {
                        if self.compiler.has_bug(BugId::ExchangeDeadReg) {
                            // Bug [38] (Fig. 1): SWP destination zeroed;
                            // the exchange's read escapes the acquire fence.
                            "wzr".to_string()
                        } else {
                            fresh()?
                        }
                    }
                };
                self.code.push(A64Instr::Swp {
                    ord: suffix,
                    src: operand.to_string(),
                    dst,
                    base: x(addr),
                });
            }
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                self.code.push(A64Instr::Cas {
                    ord: suffix,
                    expected: e.to_string(),
                    new: operand.to_string(),
                    base: x(addr),
                });
                if let Some(d) = dst {
                    if d != e {
                        self.code.push(A64Instr::MovReg {
                            dst: d.to_string(),
                            src: e.to_string(),
                        });
                    }
                }
            }
            other => return Err(Error::Unsupported(format!("aarch64 LSE for {other:?}"))),
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        match ord {
            Ord11::Na | Ord11::Rlx => {} // relaxed fences emit nothing
            Ord11::Acq => self.dmb(DmbKind::IshLd),
            Ord11::Rel | Ord11::AcqRel | Ord11::Sc => self.dmb(DmbKind::Ish),
        }
        Ok(())
    }
}
