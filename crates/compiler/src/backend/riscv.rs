//! The RISC-V back end: fence-based mappings with `.aq`/`.rl` AMOs.

use super::{AccessWidth, CondShape, Emitter, Ord11};
use telechat_common::{Error, Loc, Reg, Result};
use telechat_isa::riscv::{FenceKind, RvInstr};
use telechat_isa::SymRef;
use telechat_litmus::{BinOp, RmwOp};

/// Emits RV64 code for one thread.
#[derive(Debug, Default)]
pub struct RvEmitter {
    /// The emitted instructions.
    pub code: Vec<RvInstr>,
    labels: usize,
}

impl RvEmitter {
    /// A fresh emitter.
    pub fn new() -> RvEmitter {
        RvEmitter::default()
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!(".L{stem}{}", self.labels)
    }

    fn fence(&mut self, k: FenceKind) {
        self.code.push(RvInstr::Fence(k));
    }
}

const POOL: &[&str] = &[
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t0", "t1", "t2", "t3", "t4", "t5", "s2",
    "s3", "s4", "s5", "s6", "s7",
];

/// Reserved scratch for immediate-compare branches (not in the pool).
const BR_SCRATCH: &str = "t6";

impl Emitter for RvEmitter {
    fn pool(&self) -> &'static [&'static str] {
        POOL
    }

    fn norm(&self, phys: &str) -> Reg {
        Reg::new(phys.to_ascii_lowercase())
    }

    fn label(&mut self, l: &str) {
        self.code.push(RvInstr::Label(l.to_string()));
    }

    fn jump(&mut self, l: &str) {
        self.code.push(RvInstr::J(l.to_string()));
    }

    fn branch(&mut self, shape: &CondShape, target: &str) -> Result<()> {
        let (a, b, eq) = match shape {
            CondShape::RegZero { reg, eq } => (reg.clone(), "zero".to_string(), *eq),
            CondShape::CmpImm { reg, imm, eq } => {
                if *imm == 0 {
                    (reg.clone(), "zero".to_string(), *eq)
                } else {
                    self.code.push(RvInstr::Li {
                        dst: BR_SCRATCH.into(),
                        imm: *imm,
                    });
                    (reg.clone(), BR_SCRATCH.to_string(), *eq)
                }
            }
            CondShape::CmpReg { a, b, eq } => (a.clone(), b.clone(), *eq),
        };
        self.code.push(if eq {
            RvInstr::Beq {
                a,
                b,
                label: target.to_string(),
            }
        } else {
            RvInstr::Bne {
                a,
                b,
                label: target.to_string(),
            }
        });
        Ok(())
    }

    fn mov_imm(&mut self, dst: &str, imm: i64) {
        self.code.push(RvInstr::Li {
            dst: dst.to_string(),
            imm,
        });
    }

    fn mov_reg(&mut self, dst: &str, src: &str) {
        self.code.push(RvInstr::Mv {
            dst: dst.to_string(),
            src: src.to_string(),
        });
    }

    fn bin_op(&mut self, op: BinOp, dst: &str, a: &str, b: &str) -> Result<()> {
        match op {
            BinOp::Xor => self.code.push(RvInstr::Xor {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            BinOp::Add => self.code.push(RvInstr::Add {
                dst: dst.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            }),
            other => return Err(Error::Unsupported(format!("riscv ALU `{other}`"))),
        }
        Ok(())
    }

    fn addr_of(&mut self, dst: &str, sym: &Loc, pic: bool) {
        if pic {
            self.code.push(RvInstr::LdGot {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        } else {
            self.code.push(RvInstr::La {
                dst: dst.to_string(),
                sym: SymRef::Sym(sym.clone()),
            });
        }
    }

    fn load(
        &mut self,
        width: AccessWidth,
        dst: &str,
        addr: &str,
        ord: Ord11,
        _readonly: bool,
    ) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on RISC-V".into()));
        }
        if ord == Ord11::Sc {
            self.fence(FenceKind::RwRw);
        }
        self.code.push(RvInstr::Lw {
            dst: dst.to_string(),
            base: addr.to_string(),
            aq: false,
        });
        if matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc) {
            self.fence(FenceKind::RRw);
        }
        Ok(())
    }

    fn store(&mut self, width: AccessWidth, src: &str, addr: &str, ord: Ord11) -> Result<()> {
        if width == AccessWidth::Pair {
            return Err(Error::Unsupported("128-bit atomics on RISC-V".into()));
        }
        match ord {
            Ord11::Rel | Ord11::AcqRel => self.fence(FenceKind::RwW),
            Ord11::Sc => self.fence(FenceKind::RwRw),
            _ => {}
        }
        self.code.push(RvInstr::Sw {
            src: src.to_string(),
            base: addr.to_string(),
            rl: false,
        });
        Ok(())
    }

    fn rmw(
        &mut self,
        op: &RmwOp,
        dst: Option<&str>,
        operand: &str,
        expected: Option<&str>,
        addr: &str,
        ord: Ord11,
        fresh: &mut dyn FnMut() -> Result<String>,
    ) -> Result<()> {
        let aq = matches!(ord, Ord11::Acq | Ord11::AcqRel | Ord11::Sc);
        let rl = matches!(ord, Ord11::Rel | Ord11::AcqRel | Ord11::Sc);
        match op {
            RmwOp::FetchAdd => {
                let d = dst.map(str::to_string).unwrap_or_else(|| "zero".into());
                self.code.push(RvInstr::Amoadd {
                    dst: d,
                    src: operand.to_string(),
                    base: addr.to_string(),
                    aq,
                    rl,
                });
            }
            RmwOp::Swap => {
                let d = dst.map(str::to_string).unwrap_or_else(|| "zero".into());
                self.code.push(RvInstr::Amoswap {
                    dst: d,
                    src: operand.to_string(),
                    base: addr.to_string(),
                    aq,
                    rl,
                });
            }
            RmwOp::CmpXchg { .. } => {
                let e = expected.ok_or_else(|| {
                    Error::InternalCompilerError("CAS without expected".into())
                })?;
                let retry = self.fresh_label("retry");
                let done = self.fresh_label("done");
                let old = fresh()?;
                let status = fresh()?;
                self.code.push(RvInstr::Label(retry.clone()));
                self.code.push(RvInstr::Lr {
                    dst: old.clone(),
                    base: addr.to_string(),
                    aq,
                    rl: false,
                });
                self.code.push(RvInstr::Bne {
                    a: old.clone(),
                    b: e.to_string(),
                    label: done.clone(),
                });
                self.code.push(RvInstr::Sc {
                    status: status.clone(),
                    src: operand.to_string(),
                    base: addr.to_string(),
                    aq: false,
                    rl,
                });
                self.code.push(RvInstr::Bne {
                    a: status,
                    b: "zero".into(),
                    label: retry,
                });
                self.code.push(RvInstr::Label(done));
                if let Some(d) = dst {
                    self.mov_reg(d, &old);
                }
            }
            other => return Err(Error::Unsupported(format!("riscv RMW {other:?}"))),
        }
        Ok(())
    }

    fn fence(&mut self, ord: Ord11) -> Result<()> {
        match ord {
            Ord11::Na | Ord11::Rlx => {}
            Ord11::Acq => self.fence(FenceKind::RRw),
            Ord11::Rel => self.fence(FenceKind::RwW),
            Ord11::AcqRel | Ord11::Sc => self.fence(FenceKind::RwRw),
        }
        Ok(())
    }
}
