//! Middle-end passes over the unified IR.
//!
//! These run between the C front end and instruction selection. Two of
//! them carry the paper's §IV-B/§IV-D stories:
//!
//! * [`dead_local_elim`] — C11 allows deleting thread-local data; a litmus
//!   test whose `exists` clause names a deleted local loses its witness
//!   (the *local variable problem*, Fig. 9);
//! * [`ctrl_dep_same_store_elim`] — if both arms of a branch store the same
//!   value, `-O1` if-conversion hoists the store and the control dependency
//!   vanishes (the gcc-armv7 `+ve` gap of Table IV);
//! * [`ctrl_to_data_dep`] — at `-O2` and above the same shape is instead
//!   rewritten to a select-style *data* dependency, masking the behaviour.

use std::collections::BTreeSet;
use telechat_litmus::{BinOp, Expr, Instr};
use telechat_common::Reg;

/// Registers read anywhere in a thread body (addresses, operands, branch
/// conditions).
pub fn used_regs(body: &[Instr]) -> BTreeSet<Reg> {
    body.iter().flat_map(Instr::regs_read).collect()
}

/// Removes computations whose results are never read: unused plain *and
/// atomic* loads disappear entirely (a legal C11 transformation, [22]),
/// unused RMW destinations are dropped (the value is still atomically
/// written), unused assigns vanish.
///
/// Iterates to a fixpoint: deleting one use can make another dead.
pub fn dead_local_elim(body: &mut Vec<Instr>) {
    loop {
        let used = used_regs(body);
        let before = body.len();
        let mut changed = false;
        body.retain(|ins| match ins {
            Instr::Load { dst, .. } => used.contains(dst),
            Instr::Assign { dst, .. } => used.contains(dst),
            _ => true,
        });
        for ins in body.iter_mut() {
            if let Instr::Rmw { dst, .. } = ins {
                if let Some(d) = dst {
                    if !used.contains(d) {
                        *dst = None;
                        changed = true;
                    }
                }
            }
        }
        if body.len() == before && !changed {
            return;
        }
    }
}

/// Matches the shape produced by the C front end for
/// `if (cond) { store(l, v) } else { store(l, v) }` or the single-armed
/// variant where the fall-through also stores `v`:
///
/// ```text
/// BranchIf !cond -> Lelse ; Store l, v ; [Jump Lend ; Lelse ; Store l, v ; Lend]
/// ```
///
/// When both stores are identical the branch is redundant; `-O1`
/// if-conversion replaces the whole region with one unconditional store —
/// deleting the control dependency from the loads feeding `cond`.
/// Returns true if anything changed.
pub fn ctrl_dep_same_store_elim(body: &mut Vec<Instr>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < body.len() {
        if let Some((region_len, store)) = match_same_store_diamond(&body[i..]) {
            body.splice(i..i + region_len, [store]);
            changed = true;
        }
        i += 1;
    }
    changed
}

/// The `-O2` treatment of the same shape: keep one store but make its value
/// *data-dependent* on the condition registers (`v + (r ^ r)`), preserving
/// the ordering the hardware model derives from dependencies. This is why
/// higher optimisation levels mask the reordering that `-O1` exposes
/// (paper §IV-D).
pub fn ctrl_to_data_dep(body: &mut Vec<Instr>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < body.len() {
        if let Some((region_len, store)) = match_same_store_diamond(&body[i..]) {
            // Find the condition registers of the branch heading the region.
            let Instr::BranchIf { cond, .. } = &body[i] else {
                i += 1;
                continue;
            };
            let dep_regs = cond.regs_read();
            let Instr::Store { addr, val, annot } = store else {
                i += 1;
                continue;
            };
            let mut guarded = val;
            for r in dep_regs {
                guarded = Expr::bin(
                    BinOp::Add,
                    guarded,
                    Expr::bin(BinOp::Xor, Expr::Reg(r.clone()), Expr::Reg(r)),
                );
            }
            body.splice(
                i..i + region_len,
                [Instr::Store {
                    addr,
                    val: guarded,
                    annot,
                }],
            );
            changed = true;
        }
        i += 1;
    }
    changed
}

/// Recognises a same-store diamond at the start of `tail`, returning the
/// region length and the common store.
fn match_same_store_diamond(tail: &[Instr]) -> Option<(usize, Instr)> {
    // Form A: BranchIf -> Lelse; Store; Jump Lend; Lelse:; Store'; Lend:
    if tail.len() >= 6 {
        if let (
            Instr::BranchIf { target, .. },
            store @ Instr::Store { .. },
            Instr::Jump(endj),
            Instr::Label(lelse),
            store2 @ Instr::Store { .. },
            Instr::Label(lend),
        ) = (&tail[0], &tail[1], &tail[2], &tail[3], &tail[4], &tail[5])
        {
            if target == lelse && endj == lend && store == store2 {
                return Some((6, store.clone()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::{Annot, AnnotSet};
    use telechat_litmus::AddrExpr;

    fn load(dst: &str, loc: &str) -> Instr {
        Instr::Load {
            dst: Reg::new(dst),
            addr: AddrExpr::sym(loc),
            annot: AnnotSet::of(&[Annot::Atomic, Annot::Relaxed]),
        }
    }

    fn store(loc: &str, v: i64) -> Instr {
        Instr::Store {
            addr: AddrExpr::sym(loc),
            val: Expr::int(v),
            annot: AnnotSet::of(&[Annot::Atomic, Annot::Relaxed]),
        }
    }

    #[test]
    fn unused_load_deleted() {
        let mut body = vec![load("r0", "x"), store("y", 1)];
        dead_local_elim(&mut body);
        assert_eq!(body, vec![store("y", 1)], "the Fig. 9 deletion");
    }

    #[test]
    fn used_load_survives() {
        let mut body = vec![
            load("r0", "x"),
            Instr::Store {
                addr: AddrExpr::sym("g"),
                val: Expr::reg("r0"),
                annot: AnnotSet::one(Annot::NonAtomic),
            },
        ];
        let before = body.clone();
        dead_local_elim(&mut body);
        assert_eq!(body, before, "augmented locals are used, hence kept");
    }

    #[test]
    fn transitively_dead_chain_deleted() {
        let mut body = vec![
            load("r0", "x"),
            Instr::Assign {
                dst: Reg::new("r1"),
                expr: Expr::reg("r0"),
            },
        ];
        dead_local_elim(&mut body);
        assert!(body.is_empty(), "r1 unused → assign dies → load dies");
    }

    #[test]
    fn rmw_destination_dropped_but_op_kept() {
        let mut body = vec![Instr::Rmw {
            dst: Some(Reg::new("r1")),
            addr: AddrExpr::sym("y"),
            op: telechat_litmus::RmwOp::FetchAdd,
            operand: Expr::int(1),
            annot: AnnotSet::of(&[Annot::Atomic, Annot::Relaxed]),
            has_read_event: true,
        }];
        dead_local_elim(&mut body);
        assert_eq!(body.len(), 1);
        match &body[0] {
            Instr::Rmw { dst, .. } => assert_eq!(*dst, None),
            other => panic!("{other:?}"),
        }
    }

    fn diamond(cond_reg: &str) -> Vec<Instr> {
        vec![
            Instr::BranchIf {
                cond: Expr::eq(
                    Expr::eq(Expr::reg(cond_reg), Expr::int(1)),
                    Expr::int(0),
                ),
                target: ".else1".into(),
            },
            store("y", 1),
            Instr::Jump(".end1".into()),
            Instr::Label(".else1".into()),
            store("y", 1),
            Instr::Label(".end1".into()),
        ]
    }

    #[test]
    fn same_store_diamond_collapses_at_o1() {
        let mut body = vec![load("r0", "x")];
        body.extend(diamond("r0"));
        assert!(ctrl_dep_same_store_elim(&mut body));
        assert_eq!(body.len(), 2, "load + hoisted store");
        assert!(matches!(&body[1], Instr::Store { .. }));
    }

    #[test]
    fn different_stores_not_collapsed() {
        let mut body = diamond("r0");
        // Make the two stores differ.
        body[4] = store("y", 2);
        assert!(!ctrl_dep_same_store_elim(&mut body));
        assert_eq!(body.len(), 6);
    }

    #[test]
    fn o2_keeps_a_data_dependency() {
        let mut body = vec![load("r0", "x")];
        body.extend(diamond("r0"));
        assert!(ctrl_to_data_dep(&mut body));
        assert_eq!(body.len(), 2);
        match &body[1] {
            Instr::Store { val, .. } => {
                assert!(
                    val.regs_read().contains(&Reg::new("r0")),
                    "store value now depends on r0: {val}"
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
