//! The compiler driver: front end → middle-end passes → instruction
//! selection → object emission (the `comp` of the paper's `comp(S)`).

use crate::backend::{self, emit_thread, Emitter};
use crate::passes;
use crate::target::Target;
use crate::version::{BugId, CompilerId, OptLevel};
use telechat_common::{Arch, Error, Reg, Result, ThreadId};
use telechat_isa::AsmCode;
use telechat_litmus::{Instr, LitmusTest};
use telechat_objfile::ObjectFile;

/// A compiler under test: identity, optimisation level and target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compiler {
    /// Compiler identity (family and version — selects the bug knobs).
    pub id: CompilerId,
    /// Optimisation level.
    pub opt: OptLevel,
    /// Compilation target.
    pub target: Target,
}

/// The result of compiling a litmus test: a relocatable, linked object plus
/// the metadata the `s2l`/`mcompare` stages need.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The linked mini-object.
    pub object: ObjectFile,
    /// Source IR register → physical register, per thread (the register
    /// half of the paper's state mappings `m`).
    pub reg_map: Vec<(ThreadId, Reg, Reg)>,
    /// Profile string, e.g. `clang-11-O3-AArch64` (paper §IV-D profiles).
    pub profile: String,
}

impl Compiler {
    /// A compiler instance.
    pub fn new(id: CompilerId, opt: OptLevel, target: Target) -> Compiler {
        Compiler { id, opt, target }
    }

    /// The profile identifier used in logs and output paths.
    pub fn profile_name(&self) -> String {
        format!(
            "{}{}-{}",
            self.id,
            self.opt,
            self.target.arch.profile_name()
        )
    }

    /// Compiles a C11 litmus test to a linked object.
    ///
    /// # Errors
    ///
    /// * [`Error::Unsupported`] for non-C11 inputs, `-Og` under clang, or
    ///   constructs a back end cannot express;
    /// * [`Error::InternalCompilerError`] on register exhaustion.
    pub fn compile(&self, test: &LitmusTest) -> Result<CompileOutput> {
        if test.arch != Arch::C11 {
            return Err(Error::Unsupported(format!(
                "compiler input must be C11, got {}",
                test.arch
            )));
        }
        if !self.opt.supported_by(self.id.family) {
            return Err(Error::Unsupported(format!(
                "{} does not support {}",
                self.id, self.opt
            )));
        }

        let mut object = ObjectFile::new(self.target.arch);
        for d in &test.locs {
            object.add_data(d.loc.as_str(), d.init.clone(), d.width, d.readonly);
        }
        if self.target.pic {
            if let Some(prefix) = pointer_slot_prefix(self.target.arch) {
                for d in &test.locs {
                    object.add_pointer_slot(prefix, d.loc.as_str());
                }
            }
        }

        let mut reg_map = Vec::new();
        for (tindex, body) in test.threads.iter().enumerate() {
            let tid = ThreadId(tindex as u8);
            // -O0: every value is spilled to the thread's stack frame,
            // modelled as one location (see backend::emit_thread).
            let frame = (self.opt == OptLevel::O0).then(|| {
                let name = format!("P{tindex}.frame");
                object.add_data(&name, telechat_common::Val::Int(0),
                    telechat_litmus::Width::W64, false);
                telechat_common::Loc::new(name)
            });
            let body = self.middle_end(body.clone());
            let (code, assignments) = self.select(test, &body, frame.as_ref())?;
            for (src, phys) in assignments {
                reg_map.push((tid, src, phys));
            }
            object.add_function(&format!("P{tindex}"), code);
        }
        object.link();

        Ok(CompileOutput {
            object,
            reg_map,
            profile: self.profile_name(),
        })
    }

    /// The middle-end pass pipeline for this compiler/level/target.
    fn middle_end(&self, mut body: Vec<Instr>) -> Vec<Instr> {
        if self.opt.eliminates_dead_locals() {
            passes::dead_local_elim(&mut body);
        }
        if self.target.arch == Arch::Armv7 {
            if self.opt == OptLevel::O1 && self.id.has_bug(BugId::CtrlDepElimO1) {
                // GCC -O1 if-conversion: the control dependency vanishes
                // (the gcc-armv7 +ve gap of Table IV).
                passes::ctrl_dep_same_store_elim(&mut body);
            } else if self.opt.eliminates_dead_locals() {
                // Higher levels rewrite the same shape to a *data*
                // dependency, masking the reordering.
                passes::ctrl_to_data_dep(&mut body);
            }
        }
        body
    }

    fn select(
        &self,
        test: &LitmusTest,
        body: &[Instr],
        frame: Option<&telechat_common::Loc>,
    ) -> Result<(AsmCode, Vec<(Reg, Reg)>)> {
        let pic = self.target.pic;
        match self.target.arch {
            Arch::AArch64 => {
                let mut e = backend::a64::A64Emitter::new(self.id, self.target);
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::A64(e.code), map))
            }
            Arch::Armv7 => {
                let mut e = backend::armv7::ArmEmitter::new();
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::Armv7(e.code), map))
            }
            Arch::X86_64 => {
                let mut e = backend::x86::X86Emitter::new();
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::X86(e.code), map))
            }
            Arch::RiscV => {
                let mut e = backend::riscv::RvEmitter::new();
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::RiscV(e.code), map))
            }
            Arch::Ppc => {
                let mut e = backend::ppc::PpcEmitter::new();
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::Ppc(e.code), map))
            }
            Arch::Mips => {
                let mut e = backend::mips::MipsEmitter::new();
                let cx = emit_thread(&mut e, test, body, pic, frame)?;
                let map = collect_map(&e, &cx);
                Ok((AsmCode::Mips(e.code), map))
            }
            Arch::C11 => Err(Error::Unsupported("cannot target C11".into())),
        }
    }
}

fn pointer_slot_prefix(arch: Arch) -> Option<&'static str> {
    match arch {
        Arch::AArch64 | Arch::RiscV | Arch::Mips => Some("got"),
        Arch::Ppc => Some("toc"),
        Arch::Armv7 => Some("lit"),
        Arch::X86_64 | Arch::C11 => None,
    }
}

fn collect_map<E: Emitter>(e: &E, cx: &backend::ThreadCtx) -> Vec<(Reg, Reg)> {
    cx.assignments()
        .map(|(src, phys)| (src.clone(), e.norm(phys)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_isa::aarch64::A64Instr;
    use telechat_litmus::parse_c11;

    const MP_FETCH_ADD: &str = r#"
C11 "MP+fetch_add"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_release);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
P1 (atomic_int* x, atomic_int* y) {
  atomic_fetch_add_explicit(y, 1, memory_order_relaxed);
  atomic_thread_fence(memory_order_acquire);
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (P1:r0=0 /\ y=2)
"#;

    fn a64_code(out: &CompileOutput, func: usize) -> &[A64Instr] {
        match &out.object.functions[func].code {
            telechat_isa::AsmCode::A64(v) => v,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn buggy_llvm_zeroes_the_ldadd_destination() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(CompilerId::llvm(11), OptLevel::O2, Target::armv81_lse());
        let out = c.compile(&test).unwrap();
        let p1 = a64_code(&out, 1);
        assert!(
            p1.iter().any(|i| matches!(
                i,
                A64Instr::Ldadd { dst, .. } if dst == "wzr"
            )),
            "llvm-11 + LSE: LDADD with zero destination (Fig. 10 bug): {p1:?}"
        );
    }

    #[test]
    fn ancient_compiler_selects_stadd() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(CompilerId::llvm(9), OptLevel::O2, Target::armv81_lse());
        let out = c.compile(&test).unwrap();
        let p1 = a64_code(&out, 1);
        assert!(
            p1.iter().any(|i| matches!(i, A64Instr::Stadd { .. })),
            "llvm-9: STADD selected outright: {p1:?}"
        );
    }

    #[test]
    fn fixed_compiler_keeps_a_live_destination() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(CompilerId::llvm(17), OptLevel::O2, Target::armv81_lse());
        let out = c.compile(&test).unwrap();
        let p1 = a64_code(&out, 1);
        let ldadd = p1
            .iter()
            .find_map(|i| match i {
                A64Instr::Ldadd { dst, .. } => Some(dst.clone()),
                _ => None,
            })
            .expect("LDADD emitted");
        assert_ne!(ldadd, "wzr", "fixed compilers keep the read: {p1:?}");
    }

    #[test]
    fn pre_lse_uses_exclusive_loop() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(
            CompilerId::llvm(11),
            OptLevel::O2,
            Target::new(Arch::AArch64),
        );
        let out = c.compile(&test).unwrap();
        let p1 = a64_code(&out, 1);
        assert!(p1.iter().any(|i| matches!(i, A64Instr::Ldxr { .. })));
        assert!(p1.iter().any(|i| matches!(i, A64Instr::Stxr { .. })));
        assert!(
            !p1.iter().any(|i| matches!(i, A64Instr::Ldadd { .. })),
            "no LSE instructions without the extension"
        );
    }

    #[test]
    fn compiles_to_every_architecture() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        for arch in Arch::TARGETS {
            let c = Compiler::new(CompilerId::gcc(10), OptLevel::O2, Target::new(arch));
            let out = c
                .compile(&test)
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            assert_eq!(out.object.functions.len(), 2);
            assert!(out.object.is_linked());
        }
    }

    #[test]
    fn clang_rejects_og() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(
            CompilerId::llvm(11),
            OptLevel::Og,
            Target::new(Arch::AArch64),
        );
        assert!(matches!(c.compile(&test), Err(Error::Unsupported(_))));
    }

    #[test]
    fn pic_objects_declare_pointer_slots() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(CompilerId::gcc(10), OptLevel::O2, Target::new(Arch::Ppc));
        let out = c.compile(&test).unwrap();
        assert!(out.object.symbol("toc.x").is_some());
        assert!(out.object.symbol("toc.y").is_some());
        // x86 needs no slots.
        let c = Compiler::new(CompilerId::gcc(10), OptLevel::O2, Target::new(Arch::X86_64));
        let out = c.compile(&test).unwrap();
        assert!(out.object.symbol("got.x").is_none());
    }

    #[test]
    fn dead_local_elim_only_at_o2_and_above() {
        let lb_unused = r#"
C11 "LB-unused"
{ x = 0; y = 0; }
P0 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_relaxed);
}
exists (P0:r0=1)
"#;
        let test = parse_c11(lb_unused).unwrap();
        let o1 = Compiler::new(
            CompilerId::llvm(17),
            OptLevel::O1,
            Target::new(Arch::AArch64),
        )
        .compile(&test)
        .unwrap();
        let o2 = Compiler::new(
            CompilerId::llvm(17),
            OptLevel::O2,
            Target::new(Arch::AArch64),
        )
        .compile(&test)
        .unwrap();
        let loads = |out: &CompileOutput| {
            a64_code(out, 0)
                .iter()
                .filter(|i| matches!(i, A64Instr::Ldr { .. }))
                .count()
        };
        // O1 keeps the unused load; O2 deletes it (and its GOT address
        // computation goes with it): the Fig. 9 deletion.
        assert!(loads(&o1) > loads(&o2), "O1={} O2={}", loads(&o1), loads(&o2));
    }

    #[test]
    fn reg_map_covers_source_registers() {
        let test = parse_c11(MP_FETCH_ADD).unwrap();
        let c = Compiler::new(CompilerId::llvm(17), OptLevel::O1, Target::armv81_lse());
        let out = c.compile(&test).unwrap();
        assert!(
            out.reg_map
                .iter()
                .any(|(t, s, _)| *t == ThreadId(1) && s.name() == "r0"),
            "{:?}",
            out.reg_map
        );
    }

    #[test]
    fn profile_names() {
        let c = Compiler::new(CompilerId::llvm(11), OptLevel::O3, Target::new(Arch::AArch64));
        assert_eq!(c.profile_name(), "clang-11-O3-AArch64");
    }
}
