//! Delta-debugging of positive differences: shrink a cycle until no single
//! reduction preserves the property under test (1-minimality).
//!
//! # The minimization lattice
//!
//! Each step tries, in a fixed deterministic order, every candidate one
//! reduction away from the current shape:
//!
//! 1. **Drop an edge** — edge `i` is removed and its endpoints merge
//!    (event `i+1` disappears); dropping a communication edge merges two
//!    threads. Candidates that stop being well-formed (say, fewer than two
//!    communication edges) are skipped, which is what bottoms the lattice.
//! 2. **Weaken an intra-thread edge** — fences descend
//!    `sc → acq_rel → {acquire, release} → relaxed → plain po`;
//!    dependency and control edges drop to plain po.
//! 3. **Weaken an access kind** — RMWs become plain atomics, orderings
//!    descend `sc → acq_rel → {acquire, release} → relaxed`. (Weakening to
//!    non-atomic is deliberately *not* in the lattice: it introduces data
//!    races, and racy sources are discounted, not compared.)
//! 4. **Merge locations** — a different-location po edge becomes
//!    same-location, shrinking the test's footprint.
//!
//! The first reduction whose synthesised test still satisfies the oracle is
//! applied and the scan restarts; when a full scan fails, the shape is
//! 1-minimal with respect to the lattice and the oracle.

use crate::shape::ShapedCycle;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use telechat::{Telechat, TestVerdict};
use telechat_common::{Annot, Error, Result};
use telechat_compiler::Compiler;
use telechat_diy::{AccessKind, Edge};
use telechat_litmus::LitmusTest;

/// One applicable reduction: a human-readable description and the shape it
/// produces (canonicalized).
pub fn reductions(shape: &ShapedCycle) -> Vec<(String, ShapedCycle)> {
    let n = shape.len();
    let mut out = Vec::new();

    // 1. Edge deletions.
    for i in 0..n {
        if n <= 2 {
            break;
        }
        let mut edges = shape.edges.clone();
        let mut kinds = shape.kinds.clone();
        let mut dirs = shape.dirs.clone();
        edges.remove(i);
        let removed_event = (i + 1) % n;
        kinds.remove(removed_event);
        dirs.remove(removed_event);
        if i == n - 1 {
            // The merged event keeps event n-1's kind and leads the
            // shortened list.
            kinds.rotate_right(1);
            dirs.rotate_right(1);
        }
        // Canonicalize before the well-formedness check: a deletion can
        // leave the stored rotation ending on a po edge even though a
        // comm-final rotation (what canonical() picks) exists.
        let cand = ShapedCycle { edges, kinds, dirs }.canonical();
        if cand.is_well_formed() {
            out.push((format!("drop edge {i} ({})", shape.edges[i]), cand));
        }
    }

    // 2. Edge weakenings + 4. location merges.
    for i in 0..n {
        for weaker in weaker_edges(shape.edges[i]) {
            let mut cand = shape.clone();
            cand.edges[i] = weaker;
            let cand = cand.canonical();
            if cand.is_well_formed() {
                out.push((
                    format!("weaken edge {i} ({} -> {weaker})", shape.edges[i]),
                    cand,
                ));
            }
        }
    }

    // 3. Kind weakenings.
    for i in 0..n {
        for weaker in weaker_kinds(shape.kinds[i]) {
            let mut cand = shape.clone();
            cand.kinds[i] = weaker;
            out.push((
                format!("weaken event {i} ({} -> {weaker})", shape.kinds[i]),
                cand.canonical(),
            ));
        }
    }

    out
}

/// The ordering-weakening chain the issue names: `SeqCst → AcqRel →
/// {Acquire, Release} → Relaxed`.
fn weaker_orders(o: Annot) -> &'static [Annot] {
    match o {
        Annot::SeqCst => &[Annot::AcqRel],
        Annot::AcqRel => &[Annot::Acquire, Annot::Release],
        Annot::Acquire | Annot::Release => &[Annot::Relaxed],
        _ => &[],
    }
}

fn weaker_edges(e: Edge) -> Vec<Edge> {
    match e {
        Edge::Fenced { order } => {
            let mut out: Vec<Edge> = weaker_orders(order)
                .iter()
                .map(|&order| Edge::Fenced { order })
                .collect();
            if order == Annot::Relaxed {
                out.push(Edge::Po { sameloc: false });
            }
            out
        }
        Edge::Dp | Edge::Ctrl => vec![Edge::Po { sameloc: false }],
        // Merging locations: the footprint-shrinking direction.
        Edge::Po { sameloc: false } => vec![Edge::Po { sameloc: true }],
        Edge::Po { sameloc: true } | Edge::Rfe | Edge::Fre | Edge::Coe => Vec::new(),
    }
}

fn weaker_kinds(k: AccessKind) -> Vec<AccessKind> {
    match k {
        AccessKind::Rmw(o) => vec![AccessKind::Atomic(o)],
        AccessKind::Atomic(o) => weaker_orders(o)
            .iter()
            .map(|&o| AccessKind::Atomic(o))
            .collect(),
        AccessKind::Plain => Vec::new(),
    }
}

/// A campaign-scale memo of oracle verdicts, keyed by `(oracle key,
/// canonical shape)`.
///
/// `minimize` previously memoized *rejected* candidates per call; the memo
/// now lives in a value callers can hoist across a whole `positive_tests`
/// work-list ([`minimize_worklist`]): witnesses that reduce through the
/// same canonical shapes — common, since reductions funnel toward a small
/// set of minimal cores — share their (deterministic) pipeline runs
/// instead of re-running them per witness. Positive verdicts memoize too:
/// a shape one witness reduced through legitimately passes again when
/// another witness reaches it.
///
/// The `oracle key` names the oracle (for the pipeline oracle: compiler
/// profile + source model); shapes judged by different oracles never
/// alias. Thread-safe — a parallel minimization sweep can share one cache.
#[derive(Debug, Default)]
pub struct MinimizeCache {
    /// Oracle key → (canonical shape → verdict). Two levels so a probe
    /// borrows the key and shape (no per-probe allocations) and the
    /// (long) oracle key is stored once per oracle, not once per verdict.
    verdicts: Mutex<BTreeMap<String, BTreeMap<ShapedCycle, bool>>>,
    hits: AtomicUsize,
}

impl MinimizeCache {
    /// An empty cache.
    pub fn new() -> MinimizeCache {
        MinimizeCache::default()
    }

    /// Oracle runs avoided so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct (oracle, shape) verdicts stored.
    pub fn len(&self) -> usize {
        self.verdicts
            .lock()
            .expect("minimize cache lock")
            .values()
            .map(BTreeMap::len)
            .sum()
    }

    /// No verdicts stored yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &str, shape: &ShapedCycle) -> Option<bool> {
        let verdict = self
            .verdicts
            .lock()
            .expect("minimize cache lock")
            .get(key)
            .and_then(|m| m.get(shape))
            .copied();
        if verdict.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn store(&self, key: &str, shape: ShapedCycle, verdict: bool) {
        let mut verdicts = self.verdicts.lock().expect("minimize cache lock");
        match verdicts.get_mut(key) {
            Some(m) => {
                m.insert(shape, verdict);
            }
            None => {
                verdicts.insert(key.to_string(), BTreeMap::from([(shape, verdict)]));
            }
        }
    }
}

/// The result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The 1-minimal shape.
    pub shape: ShapedCycle,
    /// Its synthesised witness test (named `min+<slug>`).
    pub test: LitmusTest,
    /// Applied reductions, in order.
    pub trail: Vec<String>,
    /// Oracle invocations spent.
    pub checks: usize,
}

/// Shrinks `start` to a 1-minimal shape whose synthesised test still
/// satisfies `oracle`, with a private single-run memo.
///
/// # Errors
///
/// Fails if `start` does not synthesise or its test does not satisfy the
/// oracle (nothing to minimize).
pub fn minimize(
    start: &ShapedCycle,
    oracle: impl FnMut(&LitmusTest) -> bool,
) -> Result<Minimized> {
    minimize_cached(start, "", oracle, &MinimizeCache::new())
}

/// [`minimize`] against a hoisted, shareable verdict memo.
///
/// The oracle is assumed deterministic (a pipeline run is), which allows
/// three cost cuts on the dominant oracle-call budget: symmetric
/// reductions that canonicalize to the same candidate are checked once,
/// rejected canonical shapes are never re-run — a failed shape cannot
/// start passing — and, with a shared cache, verdicts carry over to every
/// later witness minimized under the same `oracle_key` (see
/// [`MinimizeCache`]). `checks` counts the oracle invocations actually
/// performed by *this* run; cache-served verdicts are not checks.
///
/// # Errors
///
/// Fails if `start` does not synthesise or its test does not satisfy the
/// oracle (nothing to minimize).
pub fn minimize_cached(
    start: &ShapedCycle,
    oracle_key: &str,
    mut oracle: impl FnMut(&LitmusTest) -> bool,
    cache: &MinimizeCache,
) -> Result<Minimized> {
    let mut checks = 0usize;
    let mut judge = |shape: &ShapedCycle, test: &LitmusTest| -> bool {
        if let Some(verdict) = cache.lookup(oracle_key, shape) {
            return verdict;
        }
        checks += 1;
        let verdict = oracle(test);
        cache.store(oracle_key, shape.clone(), verdict);
        verdict
    };
    let mut shape = start.canonical();
    let mut test = shape.synthesise_any(format!("min+{}", shape.slug()))?;
    if !judge(&shape, &test) {
        return Err(Error::IllFormed(
            "minimize: the starting shape does not satisfy the oracle".into(),
        ));
    }
    let mut trail = Vec::new();
    'shrink: loop {
        for (desc, cand) in reductions(&shape) {
            let Ok(cand_test) = cand.synthesise_any(format!("min+{}", cand.slug())) else {
                continue;
            };
            if judge(&cand, &cand_test) {
                trail.push(desc);
                shape = cand;
                test = cand_test;
                continue 'shrink;
            }
        }
        break;
    }
    Ok(Minimized {
        shape,
        test,
        trail,
        checks,
    })
}

/// Minimizes a positive difference: the oracle is "the Téléchat pipeline
/// still reports [`TestVerdict::PositiveDifference`] for this test under
/// `compiler`" (pipeline errors count as failure, so exhaustion never
/// masquerades as a witness).
///
/// # Errors
///
/// Propagates [`minimize`] failures.
pub fn minimize_positive(
    tool: &Telechat,
    compiler: &Compiler,
    start: &ShapedCycle,
) -> Result<Minimized> {
    minimize_positive_cached(tool, compiler, start, &MinimizeCache::new())
}

/// [`minimize_positive`] against a hoisted [`MinimizeCache`]: the memo key
/// is the compiler profile plus everything about the tool that can change
/// a verdict — source model, augmentation/optimisation switches, target
/// model override and the budget-relevant simulation limits — so a
/// work-list of positives under one profile shares every pipeline
/// verdict, while tools with different budgets or models never alias
/// (a budget-exhaustion `false` from a fast tool must not be replayed as
/// a thorough tool's verdict).
///
/// # Errors
///
/// Propagates [`minimize`] failures.
pub fn minimize_positive_cached(
    tool: &Telechat,
    compiler: &Compiler,
    start: &ShapedCycle,
    cache: &MinimizeCache,
) -> Result<Minimized> {
    let cfg = &tool.config;
    let key = format!(
        "{}@{}+aug:{}+opt:{}+tm:{}+sim:{:016x}",
        compiler.profile_name(),
        tool.source_model().model_name(),
        cfg.augment,
        cfg.optimise,
        cfg.target_model.as_deref().unwrap_or("-"),
        telechat::cache::sim_config_fingerprint(&cfg.sim),
    );
    minimize_cached(
        start,
        &key,
        |test| {
            tool.run(test, compiler)
                .is_ok_and(|r| r.verdict == TestVerdict::PositiveDifference)
        },
        cache,
    )
}

/// Minimizes a whole work-list of positive differences (the
/// `CampaignResult::positive_tests` follow-up) through one shared
/// [`MinimizeCache`]: witnesses that reduce through the same canonical
/// shapes amortise their pipeline runs. Returns one result per start, in
/// order, plus the cache for inspection.
pub fn minimize_worklist(
    tool: &Telechat,
    compiler: &Compiler,
    starts: &[ShapedCycle],
) -> (Vec<Result<Minimized>>, MinimizeCache) {
    let cache = MinimizeCache::new();
    let results = starts
        .iter()
        .map(|s| minimize_positive_cached(tool, compiler, s, &cache))
        .collect();
    (results, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_diy::Family;

    fn pod() -> Edge {
        Edge::Po { sameloc: false }
    }

    #[test]
    fn reductions_shrink_or_weaken() {
        let s = ShapedCycle::new(vec![
            Edge::Fenced {
                order: Annot::SeqCst,
            },
            Edge::Rfe,
            pod(),
            Edge::Fre,
        ]);
        let rs = reductions(&s);
        assert!(!rs.is_empty());
        for (desc, r) in &rs {
            assert!(r.is_well_formed(), "{desc}");
            assert!(
                r.len() < s.len() || r != &s.canonical(),
                "{desc} must change the shape"
            );
        }
        // A fence weakening to acq_rel is among them.
        assert!(rs.iter().any(|(d, _)| d.contains("fen[SC] -> fen[ACQREL]")), "{rs:?}");
    }

    #[test]
    fn minimize_reaches_a_fixpoint() {
        // Oracle: "has at least two rfe edges" — minimal witnesses are
        // exactly the 4-edge all-relaxed LB shapes.
        let start = ShapedCycle::new(vec![
            Edge::Fenced {
                order: Annot::SeqCst,
            },
            Edge::Rfe,
            Edge::Dp,
            Edge::Rfe,
            pod(),
            Edge::Fre,
        ]);
        let shape_of = |t: &LitmusTest| t.name.trim_start_matches("min+").to_string();
        let min = minimize(&start, |t| shape_of(t).matches("rfe").count() >= 2).unwrap();
        assert!(min.shape.len() < start.len(), "{}", min.shape.slug());
        assert!(min.shape.edges.iter().filter(|e| **e == Edge::Rfe).count() >= 2);
        assert!(!min.trail.is_empty());
        assert!(min.checks > min.trail.len());
        // 1-minimality: no reduction's test still satisfies the oracle.
        for (desc, r) in reductions(&min.shape) {
            if r.synthesise("x").is_ok() {
                assert!(
                    r.slug().matches("rfe").count() < 2,
                    "{desc} of {} still satisfies the oracle",
                    min.shape.slug()
                );
            }
        }
    }

    #[test]
    fn minimize_rejects_non_witnessing_starts() {
        let start = ShapedCycle::new(Family::Mp.edges(pod()));
        assert!(minimize(&start, |_| false).is_err());
    }

    #[test]
    fn shared_cache_amortises_across_witnesses() {
        // Witness `b` is witness `a` with one access strengthened to SC:
        // its kind-weakening chain descends back into `a`'s explored shape
        // space, so the second minimization must spend strictly fewer
        // oracle runs with the shared memo than it does fresh.
        let shape_of = |t: &LitmusTest| t.name.trim_start_matches("min+").to_string();
        let oracle = |t: &LitmusTest| shape_of(t).matches("rfe").count() >= 2;
        let a = ShapedCycle::new(vec![Edge::Dp, Edge::Rfe, Edge::Dp, Edge::Rfe]);
        let mut b = a.clone();
        b.kinds[0] = AccessKind::Atomic(Annot::SeqCst);

        let fresh_b = minimize(&b, oracle).unwrap();

        let cache = MinimizeCache::new();
        let shared_a = minimize_cached(&a, "k", oracle, &cache).unwrap();
        assert!(cache.len() >= shared_a.checks, "every check is memoized");
        let hits_before = cache.hits();
        let shared_b = minimize_cached(&b, "k", oracle, &cache).unwrap();
        assert_eq!(shared_b.shape, fresh_b.shape, "caching is invisible");
        assert_eq!(shared_b.trail, fresh_b.trail);
        assert!(
            shared_b.checks < fresh_b.checks,
            "shared memo must save oracle runs: {} vs {}",
            shared_b.checks,
            fresh_b.checks
        );
        assert!(cache.hits() > hits_before, "cross-witness hits recorded");

        // The extreme (and common) case: a witness whose canonical shape
        // was already minimized replays entirely from the memo.
        let replay = minimize_cached(&a, "k", oracle, &cache).unwrap();
        assert_eq!(replay.checks, 0, "fully served from the shared cache");
        assert_eq!(replay.shape, shared_a.shape);
        assert_eq!(replay.trail, shared_a.trail);
    }

    #[test]
    fn cache_keys_isolate_oracles() {
        let cache = MinimizeCache::new();
        let start = ShapedCycle::new(vec![pod(), Edge::Rfe, pod(), Edge::Rfe]);
        // Oracle 1 accepts everything; its verdicts must not leak into the
        // all-rejecting oracle 2.
        let min = minimize_cached(&start, "yes", |_| true, &cache).unwrap();
        assert!(min.shape.len() <= start.len());
        assert!(minimize_cached(&start, "no", |_| false, &cache).is_err());
        assert!(!cache.is_empty());
    }

    #[test]
    fn worklist_shares_one_cache() {
        // A campaign work-list with a strengthened variant and a repeated
        // witness, through a shared cache (pure-shape oracle — no pipeline
        // runs needed to exercise the sharing).
        let base = ShapedCycle::new(vec![Edge::Dp, Edge::Rfe, Edge::Dp, Edge::Rfe]);
        let mut strong = base.clone();
        strong.kinds[0] = AccessKind::Atomic(Annot::SeqCst);
        let starts = [base.clone(), strong, base];
        let cache = MinimizeCache::new();
        let shape_of = |t: &LitmusTest| t.name.trim_start_matches("min+").to_string();
        let oracle = |t: &LitmusTest| shape_of(t).matches("rfe").count() >= 2;
        let results: Vec<_> = starts
            .iter()
            .map(|s| minimize_cached(s, "k", oracle, &cache))
            .collect();
        assert!(results.iter().all(Result::is_ok));
        assert!(cache.hits() > 0, "later witnesses reused verdicts");
        assert_eq!(
            results[2].as_ref().unwrap().checks,
            0,
            "the repeated witness replays entirely from the memo"
        );
    }

    #[test]
    fn deletion_keeps_alignment_at_the_anchor() {
        // Deleting the final (comm) edge merges event n-1 into event 0;
        // the surviving kinds must stay attached to their events.
        let mut s = ShapedCycle::new(vec![pod(), Edge::Rfe, pod(), Edge::Rfe, pod(), Edge::Rfe]);
        s.kinds[4] = AccessKind::Atomic(Annot::SeqCst);
        s.dirs = vec![None; 6];
        let rs = reductions(&s);
        for (_, r) in rs {
            assert!(r.is_well_formed());
            assert_eq!(r.kinds.len(), r.edges.len());
            assert_eq!(r.dirs.len(), r.edges.len());
        }
    }
}
