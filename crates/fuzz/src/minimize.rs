//! Delta-debugging of positive differences: shrink a cycle until no single
//! reduction preserves the property under test (1-minimality).
//!
//! # The minimization lattice
//!
//! Each step tries, in a fixed deterministic order, every candidate one
//! reduction away from the current shape:
//!
//! 1. **Drop an edge** — edge `i` is removed and its endpoints merge
//!    (event `i+1` disappears); dropping a communication edge merges two
//!    threads. Candidates that stop being well-formed (say, fewer than two
//!    communication edges) are skipped, which is what bottoms the lattice.
//! 2. **Weaken an intra-thread edge** — fences descend
//!    `sc → acq_rel → {acquire, release} → relaxed → plain po`;
//!    dependency and control edges drop to plain po.
//! 3. **Weaken an access kind** — RMWs become plain atomics, orderings
//!    descend `sc → acq_rel → {acquire, release} → relaxed`. (Weakening to
//!    non-atomic is deliberately *not* in the lattice: it introduces data
//!    races, and racy sources are discounted, not compared.)
//! 4. **Merge locations** — a different-location po edge becomes
//!    same-location, shrinking the test's footprint.
//!
//! The first reduction whose synthesised test still satisfies the oracle is
//! applied and the scan restarts; when a full scan fails, the shape is
//! 1-minimal with respect to the lattice and the oracle.

use crate::shape::ShapedCycle;
use telechat::{Telechat, TestVerdict};
use telechat_common::{Annot, Error, Result};
use telechat_compiler::Compiler;
use telechat_diy::{AccessKind, Edge};
use telechat_litmus::LitmusTest;

/// One applicable reduction: a human-readable description and the shape it
/// produces (canonicalized).
pub fn reductions(shape: &ShapedCycle) -> Vec<(String, ShapedCycle)> {
    let n = shape.len();
    let mut out = Vec::new();

    // 1. Edge deletions.
    for i in 0..n {
        if n <= 2 {
            break;
        }
        let mut edges = shape.edges.clone();
        let mut kinds = shape.kinds.clone();
        let mut dirs = shape.dirs.clone();
        edges.remove(i);
        let removed_event = (i + 1) % n;
        kinds.remove(removed_event);
        dirs.remove(removed_event);
        if i == n - 1 {
            // The merged event keeps event n-1's kind and leads the
            // shortened list.
            kinds.rotate_right(1);
            dirs.rotate_right(1);
        }
        // Canonicalize before the well-formedness check: a deletion can
        // leave the stored rotation ending on a po edge even though a
        // comm-final rotation (what canonical() picks) exists.
        let cand = ShapedCycle { edges, kinds, dirs }.canonical();
        if cand.is_well_formed() {
            out.push((format!("drop edge {i} ({})", shape.edges[i]), cand));
        }
    }

    // 2. Edge weakenings + 4. location merges.
    for i in 0..n {
        for weaker in weaker_edges(shape.edges[i]) {
            let mut cand = shape.clone();
            cand.edges[i] = weaker;
            let cand = cand.canonical();
            if cand.is_well_formed() {
                out.push((
                    format!("weaken edge {i} ({} -> {weaker})", shape.edges[i]),
                    cand,
                ));
            }
        }
    }

    // 3. Kind weakenings.
    for i in 0..n {
        for weaker in weaker_kinds(shape.kinds[i]) {
            let mut cand = shape.clone();
            cand.kinds[i] = weaker;
            out.push((
                format!("weaken event {i} ({} -> {weaker})", shape.kinds[i]),
                cand.canonical(),
            ));
        }
    }

    out
}

/// The ordering-weakening chain the issue names: `SeqCst → AcqRel →
/// {Acquire, Release} → Relaxed`.
fn weaker_orders(o: Annot) -> &'static [Annot] {
    match o {
        Annot::SeqCst => &[Annot::AcqRel],
        Annot::AcqRel => &[Annot::Acquire, Annot::Release],
        Annot::Acquire | Annot::Release => &[Annot::Relaxed],
        _ => &[],
    }
}

fn weaker_edges(e: Edge) -> Vec<Edge> {
    match e {
        Edge::Fenced { order } => {
            let mut out: Vec<Edge> = weaker_orders(order)
                .iter()
                .map(|&order| Edge::Fenced { order })
                .collect();
            if order == Annot::Relaxed {
                out.push(Edge::Po { sameloc: false });
            }
            out
        }
        Edge::Dp | Edge::Ctrl => vec![Edge::Po { sameloc: false }],
        // Merging locations: the footprint-shrinking direction.
        Edge::Po { sameloc: false } => vec![Edge::Po { sameloc: true }],
        Edge::Po { sameloc: true } | Edge::Rfe | Edge::Fre | Edge::Coe => Vec::new(),
    }
}

fn weaker_kinds(k: AccessKind) -> Vec<AccessKind> {
    match k {
        AccessKind::Rmw(o) => vec![AccessKind::Atomic(o)],
        AccessKind::Atomic(o) => weaker_orders(o)
            .iter()
            .map(|&o| AccessKind::Atomic(o))
            .collect(),
        AccessKind::Plain => Vec::new(),
    }
}

/// The result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The 1-minimal shape.
    pub shape: ShapedCycle,
    /// Its synthesised witness test (named `min+<slug>`).
    pub test: LitmusTest,
    /// Applied reductions, in order.
    pub trail: Vec<String>,
    /// Oracle invocations spent.
    pub checks: usize,
}

/// Shrinks `start` to a 1-minimal shape whose synthesised test still
/// satisfies `oracle`.
///
/// The oracle is assumed deterministic (a pipeline run is), which allows
/// two cost cuts on the dominant oracle-call budget: symmetric reductions
/// that canonicalize to the same candidate are checked once per scan, and
/// candidates a previous scan rejected are never re-run — a failed
/// canonical shape cannot start passing.
///
/// # Errors
///
/// Fails if `start` does not synthesise or its test does not satisfy the
/// oracle (nothing to minimize).
pub fn minimize(
    start: &ShapedCycle,
    mut oracle: impl FnMut(&LitmusTest) -> bool,
) -> Result<Minimized> {
    let mut shape = start.canonical();
    let mut test = shape.synthesise_any(format!("min+{}", shape.slug()))?;
    let mut checks = 1usize;
    if !oracle(&test) {
        return Err(Error::IllFormed(
            "minimize: the starting shape does not satisfy the oracle".into(),
        ));
    }
    let mut trail = Vec::new();
    let mut rejected: std::collections::BTreeSet<ShapedCycle> = std::collections::BTreeSet::new();
    'shrink: loop {
        for (desc, cand) in reductions(&shape) {
            // Also dedups symmetric reductions within one scan: the first
            // occurrence either passes (scan restarts) or lands here.
            if rejected.contains(&cand) {
                continue;
            }
            let Ok(cand_test) = cand.synthesise_any(format!("min+{}", cand.slug())) else {
                continue;
            };
            checks += 1;
            if oracle(&cand_test) {
                trail.push(desc);
                shape = cand;
                test = cand_test;
                continue 'shrink;
            }
            rejected.insert(cand);
        }
        break;
    }
    Ok(Minimized {
        shape,
        test,
        trail,
        checks,
    })
}

/// Minimizes a positive difference: the oracle is "the Téléchat pipeline
/// still reports [`TestVerdict::PositiveDifference`] for this test under
/// `compiler`" (pipeline errors count as failure, so exhaustion never
/// masquerades as a witness).
///
/// # Errors
///
/// Propagates [`minimize`] failures.
pub fn minimize_positive(
    tool: &Telechat,
    compiler: &Compiler,
    start: &ShapedCycle,
) -> Result<Minimized> {
    minimize(start, |test| {
        tool.run(test, compiler)
            .is_ok_and(|r| r.verdict == TestVerdict::PositiveDifference)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_diy::Family;

    fn pod() -> Edge {
        Edge::Po { sameloc: false }
    }

    #[test]
    fn reductions_shrink_or_weaken() {
        let s = ShapedCycle::new(vec![
            Edge::Fenced {
                order: Annot::SeqCst,
            },
            Edge::Rfe,
            pod(),
            Edge::Fre,
        ]);
        let rs = reductions(&s);
        assert!(!rs.is_empty());
        for (desc, r) in &rs {
            assert!(r.is_well_formed(), "{desc}");
            assert!(
                r.len() < s.len() || r != &s.canonical(),
                "{desc} must change the shape"
            );
        }
        // A fence weakening to acq_rel is among them.
        assert!(rs.iter().any(|(d, _)| d.contains("fen[SC] -> fen[ACQREL]")), "{rs:?}");
    }

    #[test]
    fn minimize_reaches_a_fixpoint() {
        // Oracle: "has at least two rfe edges" — minimal witnesses are
        // exactly the 4-edge all-relaxed LB shapes.
        let start = ShapedCycle::new(vec![
            Edge::Fenced {
                order: Annot::SeqCst,
            },
            Edge::Rfe,
            Edge::Dp,
            Edge::Rfe,
            pod(),
            Edge::Fre,
        ]);
        let shape_of = |t: &LitmusTest| t.name.trim_start_matches("min+").to_string();
        let min = minimize(&start, |t| shape_of(t).matches("rfe").count() >= 2).unwrap();
        assert!(min.shape.len() < start.len(), "{}", min.shape.slug());
        assert!(min.shape.edges.iter().filter(|e| **e == Edge::Rfe).count() >= 2);
        assert!(!min.trail.is_empty());
        assert!(min.checks > min.trail.len());
        // 1-minimality: no reduction's test still satisfies the oracle.
        for (desc, r) in reductions(&min.shape) {
            if r.synthesise("x").is_ok() {
                assert!(
                    r.slug().matches("rfe").count() < 2,
                    "{desc} of {} still satisfies the oracle",
                    min.shape.slug()
                );
            }
        }
    }

    #[test]
    fn minimize_rejects_non_witnessing_starts() {
        let start = ShapedCycle::new(Family::Mp.edges(pod()));
        assert!(minimize(&start, |_| false).is_err());
    }

    #[test]
    fn deletion_keeps_alignment_at_the_anchor() {
        // Deleting the final (comm) edge merges event n-1 into event 0;
        // the surviving kinds must stay attached to their events.
        let mut s = ShapedCycle::new(vec![pod(), Edge::Rfe, pod(), Edge::Rfe, pod(), Edge::Rfe]);
        s.kinds[4] = AccessKind::Atomic(Annot::SeqCst);
        s.dirs = vec![None; 6];
        let rs = reductions(&s);
        for (_, r) in rs {
            assert!(r.is_well_formed());
            assert_eq!(r.kinds.len(), r.edges.len());
            assert_eq!(r.dirs.len(), r.edges.len());
        }
    }
}
