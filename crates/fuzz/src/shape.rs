//! The fuzzer's cycle representation: a [`ShapedCycle`] is a
//! [`telechat_diy::CycleSpec`] stripped of its name — edges, per-event
//! access kinds and per-event direction pins — with the structural helpers
//! generation needs (validity checking, rotation, canonical form, slugs).
//!
//! # Validity
//!
//! A shape is *well-formed* when
//!
//! 1. it has at least two edges and at least **two** communication edges
//!    (`rfe`/`fre`/`coe`) — one communication edge cannot cross threads, so
//!    the generated `exists` clause would be trivially unobservable;
//! 2. the per-event direction constraints (each event is the target of one
//!    edge and the source of the next, and may be pinned by `dirs`) are
//!    satisfiable — e.g. `rfe;rfe` is rejected because the middle event
//!    would have to be a read and a write at once;
//! 3. the final edge of the stored rotation is a communication edge (the
//!    synthesiser's anchor; every cycle with a communication edge has such
//!    a rotation, so this loses no shapes).
//!
//! Well-formedness is *rotation-invariant*, which is what makes canonical
//! dedup sound. A well-formed shape can still fail to synthesise — the
//! witness condition may be self-contradictory (a `coe`-only cycle) — and
//! such [`telechat_common::Error::Vacuous`] shapes are dropped by the
//! corpus builders.

use std::fmt;
use telechat_common::{Annot, Result};
use telechat_diy::{AccessKind, CycleSpec, Dir, Edge};
use telechat_litmus::LitmusTest;

/// The default access kind for events no generator dimension touched.
pub const DEFAULT_KIND: AccessKind = AccessKind::Atomic(Annot::Relaxed);

/// A nameless cycle of candidate relaxations: the unit the fuzzer
/// enumerates, samples, canonicalizes and minimizes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapedCycle {
    /// `edges[i]` connects event `i` to event `i+1 (mod n)`.
    pub edges: Vec<Edge>,
    /// Access kind of event `i` (always the same length as `edges`).
    pub kinds: Vec<AccessKind>,
    /// Explicit direction pins (always the same length as `edges`); `None`
    /// leaves the direction to the edge constraints.
    pub dirs: Vec<Option<Dir>>,
}

impl ShapedCycle {
    /// A shape with all-relaxed atomics and no direction pins.
    pub fn new(edges: Vec<Edge>) -> ShapedCycle {
        let n = edges.len();
        ShapedCycle {
            edges,
            kinds: vec![DEFAULT_KIND; n],
            dirs: vec![None; n],
        }
    }

    /// The shape of a hand-written [`CycleSpec`] (kinds/dirs padded).
    pub fn from_spec(spec: &CycleSpec) -> ShapedCycle {
        let n = spec.edges.len();
        ShapedCycle {
            edges: spec.edges.clone(),
            kinds: (0..n)
                .map(|i| spec.kinds.get(i).copied().unwrap_or(DEFAULT_KIND))
                .collect(),
            dirs: (0..n)
                .map(|i| spec.dirs.get(i).copied().flatten())
                .collect(),
        }
    }

    /// Number of edges (= number of events).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the cycle has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of communication edges (= number of threads when valid).
    pub fn comm_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_comm()).count()
    }

    /// Number of distinct locations the synthesiser will allocate.
    pub fn loc_count(&self) -> usize {
        self.edges.iter().filter(|e| e.advances_loc()).count().max(1)
    }

    /// Per-event directions implied by the edge constraints and pins:
    /// `Ok(dirs)` with `None` for genuinely unconstrained events, or the
    /// clash error. Delegates to the synthesiser's own inference
    /// ([`telechat_diy::cycle::infer_dirs`]) so the two can never drift.
    pub fn event_dirs(&self) -> Result<Vec<Option<Dir>>> {
        telechat_diy::cycle::infer_dirs(&self.edges, &self.dirs)
    }

    /// Cheap well-formedness check (see the module docs); does not
    /// synthesise, so vacuous-witness shapes still pass. The semantic
    /// rules (direction consistency, dependency-into-read, degenerate
    /// lone-advancing po) are the synthesiser's own, via
    /// [`telechat_diy::cycle::check_semantics`].
    pub fn is_well_formed(&self) -> bool {
        if self.len() < 2
            || self.comm_count() < 2
            || !self.edges.last().is_some_and(|e| e.is_comm())
        {
            return false;
        }
        let Ok(dirs) = self.event_dirs() else {
            return false;
        };
        telechat_diy::cycle::check_semantics(&self.edges, &dirs).is_ok()
    }

    /// The shape rotated so event `k` becomes event 0.
    #[must_use]
    pub fn rotated(&self, k: usize) -> ShapedCycle {
        let n = self.len();
        if n == 0 {
            return self.clone();
        }
        let idx = |i: usize| (i + k) % n;
        ShapedCycle {
            edges: (0..n).map(|i| self.edges[idx(i)]).collect(),
            kinds: (0..n).map(|i| self.kinds[idx(i)]).collect(),
            dirs: (0..n).map(|i| self.dirs[idx(i)]).collect(),
        }
    }

    /// The canonical representative of this shape's rotation class: the
    /// least rotation (under the derived lexicographic order) whose final
    /// edge is a communication edge.
    ///
    /// Rotating a cycle renames its threads, locations and write values —
    /// event 0 moves, so the walk hands out thread/location indices and
    /// per-location value numbers in a different order — but synthesises an
    /// isomorphic litmus test. Canonicalizing before synthesis is therefore
    /// exactly "never simulate an isomorphic test twice". (Reflection is
    /// deliberately *not* a symmetry here: traversing a cycle backwards
    /// reverses program order, and e.g. store buffering `pod;fre;pod;fre`
    /// read backwards is load buffering `pod;rfe;pod;rfe` — a genuinely
    /// different test that exercises different compiler transformations.)
    #[must_use]
    pub fn canonical(&self) -> ShapedCycle {
        let n = self.len();
        let mut best: Option<ShapedCycle> = None;
        for k in 0..n {
            if !self.edges[(k + n - 1) % n].is_comm() {
                continue;
            }
            let cand = self.rotated(k);
            if best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        }
        // No communication edge at all: fall back to the least rotation so
        // canonicalization is still total (such shapes never synthesise).
        best.unwrap_or_else(|| {
            (0..n.max(1))
                .map(|k| self.rotated(k))
                .min()
                .unwrap_or_else(|| self.clone())
        })
    }

    /// A compact, unique-per-shape name fragment: the edges joined by `+`
    /// (`pod+rfe+pod+fre`), with kind and direction suffixes when any event
    /// deviates from the defaults.
    pub fn slug(&self) -> String {
        let mut s = self
            .edges
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("+");
        if self.kinds.iter().any(|k| *k != DEFAULT_KIND) {
            s.push_str("__");
            let kinds: Vec<String> = self.kinds.iter().map(ToString::to_string).collect();
            s.push_str(&kinds.join("."));
        }
        if self.dirs.iter().any(Option::is_some) {
            s.push_str("__");
            for d in &self.dirs {
                s.push(match d {
                    Some(Dir::R) => 'R',
                    Some(Dir::W) => 'W',
                    None => '-',
                });
            }
        }
        s
    }

    /// The named [`CycleSpec`] for this shape.
    pub fn spec(&self, name: impl Into<String>) -> CycleSpec {
        let mut spec = CycleSpec::new(name, self.edges.clone());
        spec.kinds = self.kinds.clone();
        spec.dirs = self.dirs.clone();
        spec
    }

    /// Synthesises the litmus test witnessing this shape.
    ///
    /// # Errors
    ///
    /// Propagates [`CycleSpec::synthesise`] failures (ill-formed or vacuous
    /// shapes).
    pub fn synthesise(&self, name: impl Into<String>) -> Result<LitmusTest> {
        self.spec(name).synthesise()
    }

    /// Synthesises the first rotation (canonical order) that yields a
    /// non-vacuous test.
    ///
    /// The synthesiser linearizes each location's writes by cutting the
    /// cycle at event 0, and a witness that relates writes *across* the cut
    /// can come out contradictory even though another cut of the very same
    /// cycle is fine — satisfiability of the generated `exists` clause is
    /// not rotation-invariant. Deduplication still happens per rotation
    /// class (the cycle is the same relaxation scenario); this method picks
    /// a workable cut deterministically.
    ///
    /// # Errors
    ///
    /// Returns the last rotation's error when every cut fails.
    pub fn synthesise_any(&self, name: impl Into<String>) -> Result<LitmusTest> {
        let name = name.into();
        let canon = self.canonical();
        let n = canon.len();
        let mut last_err = None;
        for k in 0..n {
            if !canon.edges[(k + n - 1) % n].is_comm() {
                continue;
            }
            match canon.rotated(k).synthesise(name.clone()) {
                Ok(test) => return Ok(test),
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(e),
            // No comm-final rotation exists (no communication edge at all,
            // or an empty cycle): let the synthesiser produce its accurate
            // diagnostic instead of inventing one.
            None => canon.synthesise(name),
        }
    }
}

impl fmt::Display for ShapedCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::Error;
    use telechat_diy::Family;

    fn pod() -> Edge {
        Edge::Po { sameloc: false }
    }

    #[test]
    fn family_shapes_are_well_formed() {
        for fam in Family::ALL {
            let s = ShapedCycle::new(fam.edges(pod()));
            assert!(s.is_well_formed(), "{}", fam.tag());
            assert!(s.synthesise(fam.tag()).is_ok(), "{}", fam.tag());
        }
    }

    #[test]
    fn rotations_share_a_canonical_form() {
        let s = ShapedCycle::new(Family::Mp.edges(pod()));
        let canon = s.canonical();
        for k in 0..s.len() {
            assert_eq!(s.rotated(k).canonical(), canon, "rotation {k}");
        }
        // The canonical form itself is one of the rotations and ends with
        // a communication edge.
        assert!(canon.edges.last().unwrap().is_comm());
        assert!((0..s.len()).any(|k| s.rotated(k) == canon));
    }

    #[test]
    fn kinds_rotate_with_edges() {
        let mut s = ShapedCycle::new(Family::Mp.edges(pod()));
        s.kinds[1] = AccessKind::Atomic(Annot::Release);
        let r = s.rotated(2);
        // Event 1 of the original sits at position (1 - 2) mod 4 = 3.
        assert_eq!(r.kinds[3], AccessKind::Atomic(Annot::Release));
        assert_eq!(r.canonical(), s.canonical());
    }

    #[test]
    fn ill_formed_shapes_are_rejected() {
        // rfe;rfe: middle event must read and write.
        assert!(!ShapedCycle::new(vec![Edge::Rfe, Edge::Rfe]).is_well_formed());
        // A single communication edge cannot cross threads.
        assert!(!ShapedCycle::new(vec![pod(), Edge::Rfe]).is_well_formed());
        // Stored rotation must end on a communication edge.
        assert!(!ShapedCycle::new(vec![Edge::Rfe, pod(), Edge::Fre, pod()]).is_well_formed());
        // …but a rotation of it is fine.
        assert!(ShapedCycle::new(vec![pod(), Edge::Rfe, pod(), Edge::Fre]).is_well_formed());
    }

    #[test]
    fn from_spec_round_trips_kinds_and_dirs() {
        let spec = CycleSpec::new("x", Family::Lb.edges(pod()))
            .kind(1, AccessKind::Rmw(Annot::Release))
            .dir(0, Dir::R);
        let shape = ShapedCycle::from_spec(&spec);
        assert_eq!(shape.kinds[1], AccessKind::Rmw(Annot::Release));
        assert_eq!(shape.kinds[0], DEFAULT_KIND);
        assert_eq!(shape.dirs[0], Some(Dir::R));
        assert_eq!(
            shape.synthesise("x").unwrap(),
            spec.synthesise().unwrap(),
            "shape and spec agree"
        );
    }

    #[test]
    fn synthesise_any_reports_accurate_errors() {
        // No communication edge: the synthesiser's vacuity diagnostic must
        // come through, not a made-up one.
        let err = ShapedCycle::new(vec![pod(), pod()])
            .synthesise_any("x")
            .unwrap_err();
        assert!(matches!(err, Error::Vacuous(_)), "{err}");
        assert!(err.to_string().contains("communication"), "{err}");
        // Empty cycle.
        let err = ShapedCycle::new(Vec::new()).synthesise_any("x").unwrap_err();
        assert!(err.to_string().contains("two edges"), "{err}");
    }

    #[test]
    fn slug_is_readable_and_injective_on_families() {
        let slugs: Vec<String> = Family::ALL
            .iter()
            .map(|f| ShapedCycle::new(f.edges(pod())).canonical().slug())
            .collect();
        assert!(slugs.contains(&"pod+rfe+pod+fre".to_string()), "{slugs:?}");
        let mut dedup = slugs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), slugs.len(), "{slugs:?}");
    }
}
