//! `telechat-fuzz` — the cycle-space fuzzing CLI.
//!
//! ```text
//! telechat-fuzz generate [--comm N] [--po-run N] [--limit N] [--print] [--hash-only]
//! telechat-fuzz campaign [--seed S] [--count N] [--source-model M] [--target-model M]
//!                        [--arch A] [--compiler llvm-N|gcc-N] [--opt -ON]
//!                        [--threads T] [--assert-no-positive] [--store PATH]
//!                        [--journal PATH] [--shard I/N]
//!                        [--metrics] [--trace PATH] [--progress]
//! telechat-fuzz merge --journal PATH [--journal PATH ...]
//! telechat-fuzz minimize [--seed S] [--count N] [--source-model M] [--target-model M]
//!                        [--arch A] [--compiler llvm-N|gcc-N] [--opt -ON]
//! ```
//!
//! `generate` prints the canonical corpus at a communication-edge budget
//! (its size and FNV fingerprint are deterministic — CI diffs two runs).
//! `campaign` streams a seeded fuzz campaign through the full pipeline and
//! tabulates the differences. `minimize` hunts the stream for the first
//! positive difference and shrinks it to a 1-minimal witness.
//!
//! `--journal PATH` makes the campaign resumable: completed work items are
//! logged and a rerun (after a crash or `kill -9`) replays them instead of
//! recomputing, with a final table byte-identical to an uninterrupted run.
//! `--shard I/N` runs one hash-partition of the work-item space; `merge`
//! folds the `N` completed shard journals back into the unsharded result,
//! refusing incomplete, overlapping or mixed-campaign journal sets.
//!
//! The campaign sink flags compose rather than conflict: `--metrics`
//! prints the metrics table in the summary, `--trace PATH` additionally
//! writes the span/metric JSONL, and `--progress` streams live heartbeat
//! lines to *stderr* while the campaign runs (stdout stays byte-
//! deterministic). Any of the three opens the same telemetry window, so
//! `--progress` or `--trace` alone also yields the metrics table —
//! combining them with `--metrics` is allowed and redundant only in that
//! sense. A flag that does not apply to a subcommand (`generate
//! --progress`, `campaign --hash-only`, …) is a usage error, not silent
//! precedence.

use telechat::{
    campaign_fingerprint, merge_journals, run_campaign_source, CampaignJournal, CampaignSpec,
    PersistStore, PipelineConfig, ShardSpec, Telechat, TestVerdict,
};
use telechat_common::{Arch, Error, Result};
use telechat_compiler::{Compiler, CompilerId, OptLevel, Target};
use telechat_fuzz::{corpus, fnv1a64, minimize_positive, FuzzConfig, FuzzSource, GenConfig};
use telechat_litmus::print::to_litmus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("telechat-fuzz: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Which flags each subcommand accepts. Anything else parsed is a usage
/// error — inapplicable flags are rejected, never silently ignored.
const GENERATE_FLAGS: &[&str] = &["--comm", "--po-run", "--limit", "--print", "--hash-only"];
const CAMPAIGN_FLAGS: &[&str] = &[
    "--comm",
    "--po-run",
    "--seed",
    "--count",
    "--source-model",
    "--target-model",
    "--arch",
    "--compiler",
    "--opt",
    "--threads",
    "--assert-no-positive",
    "--store",
    "--journal",
    "--shard",
    "--metrics",
    "--trace",
    "--progress",
];
const MERGE_FLAGS: &[&str] = &["--journal"];
const MINIMIZE_FLAGS: &[&str] = &[
    "--comm",
    "--po-run",
    "--seed",
    "--count",
    "--source-model",
    "--target-model",
    "--arch",
    "--compiler",
    "--opt",
];

fn run(args: &[String]) -> Result<i32> {
    match args.first().map(String::as_str) {
        Some("generate") => {
            let o = Opts::parse(&args[1..])?;
            o.check_flags("generate", GENERATE_FLAGS)?;
            generate(&o)
        }
        Some("campaign") => {
            let o = Opts::parse(&args[1..])?;
            o.check_flags("campaign", CAMPAIGN_FLAGS)?;
            campaign(&o)
        }
        Some("merge") => {
            let o = Opts::parse(&args[1..])?;
            o.check_flags("merge", MERGE_FLAGS)?;
            merge(&o)
        }
        Some("minimize") => {
            let o = Opts::parse(&args[1..])?;
            o.check_flags("minimize", MINIMIZE_FLAGS)?;
            hunt_and_minimize(&o)
        }
        _ => {
            eprintln!("usage: telechat-fuzz <generate|campaign|merge|minimize> [options]");
            eprintln!("       (see the crate docs for the option list)");
            Ok(2)
        }
    }
}

/// Flat option bag shared by the subcommands.
struct Opts {
    comm: usize,
    po_run: usize,
    limit: usize,
    print: bool,
    hash_only: bool,
    seed: u64,
    count: usize,
    source_model: String,
    target_model: Option<String>,
    arch: Arch,
    compiler: CompilerId,
    opt: OptLevel,
    threads: usize,
    assert_no_positive: bool,
    store: Option<std::path::PathBuf>,
    /// One path for `campaign --journal`, many for `merge`.
    journal: Vec<std::path::PathBuf>,
    shard: Option<ShardSpec>,
    metrics: bool,
    trace: Option<std::path::PathBuf>,
    progress: bool,
    /// Every flag the parser consumed, in order — what `check_flags`
    /// validates against the invoked subcommand's allow-list.
    seen: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts> {
        let mut o = Opts {
            // Campaign/minimize default: the 61-test two-thread corpus, so
            // the seeded sampling phase engages within a small --count and
            // --seed genuinely steers the stream. `generate` users pass
            // --comm explicitly (CI pins --comm 4).
            comm: 2,
            po_run: 1,
            limit: usize::MAX,
            print: false,
            hash_only: false,
            seed: 7,
            count: 64,
            source_model: "rc11".into(),
            target_model: None,
            arch: Arch::AArch64,
            compiler: CompilerId::llvm(11),
            opt: OptLevel::O2,
            threads: 1,
            assert_no_positive: false,
            store: None,
            journal: Vec::new(),
            shard: None,
            metrics: false,
            trace: None,
            progress: false,
            seen: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            o.seen.push(flag.clone());
            let mut value = || {
                it.next()
                    .ok_or_else(|| Error::parse(format!("{flag} needs a value")))
            };
            match flag.as_str() {
                "--comm" => o.comm = parse_num(value()?)?,
                "--po-run" => o.po_run = parse_num(value()?)?,
                "--limit" => o.limit = parse_num(value()?)?,
                "--print" => o.print = true,
                "--hash-only" => o.hash_only = true,
                "--seed" => o.seed = parse_num(value()?)? as u64,
                "--count" => o.count = parse_num(value()?)?,
                "--source-model" => o.source_model = value()?.clone(),
                "--target-model" => o.target_model = Some(value()?.clone()),
                "--arch" => o.arch = value()?.parse()?,
                "--compiler" => o.compiler = parse_compiler(value()?)?,
                "--opt" => o.opt = value()?.parse()?,
                "--threads" => o.threads = parse_num(value()?)?,
                "--assert-no-positive" => o.assert_no_positive = true,
                "--store" => o.store = Some(value()?.into()),
                "--journal" => o.journal.push(value()?.into()),
                "--shard" => o.shard = Some(ShardSpec::parse(value()?)?),
                "--metrics" => o.metrics = true,
                "--trace" => o.trace = Some(value()?.into()),
                "--progress" => o.progress = true,
                other => return Err(Error::parse(format!("unknown option `{other}`"))),
            }
        }
        Ok(o)
    }

    /// Rejects flags that parsed but do not apply to `subcommand`.
    fn check_flags(&self, subcommand: &str, allowed: &[&str]) -> Result<()> {
        for flag in &self.seen {
            if !allowed.contains(&flag.as_str()) {
                return Err(Error::parse(format!(
                    "`{flag}` does not apply to `{subcommand}` (accepted: {})",
                    allowed.join(" ")
                )));
            }
        }
        Ok(())
    }

    fn fuzz_config(&self) -> FuzzConfig {
        let mut cfg = FuzzConfig::smoke(self.seed, self.count);
        cfg.exhaustive = self.gen_config();
        cfg
    }

    fn gen_config(&self) -> GenConfig {
        let mut cfg = GenConfig::corpus(self.comm);
        cfg.max_po_run = self.po_run;
        // Scale both budgets together, or --po-run would silently lose
        // shapes to the location cap while claiming full coverage.
        cfg.max_edges = self.comm * (1 + self.po_run);
        cfg.max_locs = cfg.max_edges;
        cfg
    }
}

fn parse_num(s: &str) -> Result<usize> {
    s.parse()
        .map_err(|_| Error::parse(format!("bad number `{s}`")))
}

fn parse_compiler(s: &str) -> Result<CompilerId> {
    let (family, version) = s
        .split_once('-')
        .ok_or_else(|| Error::parse(format!("expected llvm-N or gcc-N, got `{s}`")))?;
    let v: u32 = version
        .parse()
        .map_err(|_| Error::parse(format!("bad compiler version `{version}`")))?;
    match family {
        "llvm" | "clang" => Ok(CompilerId::llvm(v)),
        "gcc" => Ok(CompilerId::gcc(v)),
        other => Err(Error::parse(format!("unknown compiler family `{other}`"))),
    }
}

fn generate(o: &Opts) -> Result<i32> {
    let corpus = corpus(&o.gen_config());
    let mut hash = 0u64;
    for (i, (shape, test)) in corpus.iter().enumerate() {
        hash = fnv1a64(hash, to_litmus(test).as_bytes());
        if i < o.limit && !o.hash_only {
            if o.print {
                println!("{}", to_litmus(test));
            } else {
                println!(
                    "{:4}  {:40}  threads={} locs={}",
                    i,
                    shape.slug(),
                    test.thread_count(),
                    test.locs.len()
                );
            }
        }
    }
    println!(
        "corpus: comm<={} po-run<={} -> {} canonical tests, fnv1a64 {hash:016x}",
        o.comm,
        o.po_run,
        corpus.len()
    );
    Ok(0)
}

fn campaign_spec(o: &Opts) -> Result<CampaignSpec> {
    // `--store PATH` attaches the crash-safe persistent store: a rerun
    // with the same path answers already-simulated legs from the log.
    let store = match &o.store {
        Some(path) => Some(std::sync::Arc::new(PersistStore::open(path)?)),
        None => None,
    };
    Ok(CampaignSpec {
        compilers: vec![o.compiler],
        opts: vec![o.opt],
        targets: vec![Target::new(o.arch)],
        source_model: o.source_model.clone(),
        threads: o.threads,
        cache: true,
        store,
        // A trace or progress sink needs the span/metric collection even
        // without --metrics (and either therefore also prints the metrics
        // table in the campaign summary, exactly as --metrics would).
        metrics: o.metrics || o.trace.is_some() || o.progress,
        ..CampaignSpec::default()
    })
}

/// The live progress sink: a background ticker that renders heartbeat
/// lines to stderr from the metrics counter registry while the campaign
/// runs. Stdout stays byte-deterministic. The ticker is a drop guard —
/// the final line is emitted on drop, so even campaigns that end in an
/// early error or a panic (unwinding through `campaign`) report their
/// totals instead of going silent.
struct ProgressTicker {
    shared: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressTicker {
    fn start(total: usize, journal: bool) -> ProgressTicker {
        let shared = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let in_thread = std::sync::Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            let (lock, cv) = &*in_thread;
            let mut stopped = match lock.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                let tick = std::time::Duration::from_millis(1000);
                stopped = match cv.wait_timeout(stopped, tick) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
                Self::heartbeat(total, journal, started, *stopped);
                if *stopped {
                    return;
                }
            }
        });
        ProgressTicker {
            shared,
            handle: Some(handle),
        }
    }

    /// One heartbeat line from the live counter registry.
    fn heartbeat(total: usize, journal: bool, started: std::time::Instant, done: bool) {
        use telechat_obs::{get, Counter};
        let tests = get(Counter::CampaignTests);
        let positives = get(Counter::CampaignPositives);
        let pruned = get(Counter::SimPruned);
        let candidates = get(Counter::SimCandidates);
        let elapsed = started.elapsed().as_secs_f64();
        let prune = if candidates > 0 {
            format!("{:.1}%", pruned as f64 * 100.0 / candidates as f64)
        } else {
            "-".into()
        };
        let resumed = if journal {
            let replayed = get(Counter::CampaignResumed);
            let remaining = (total as u64).saturating_sub(tests);
            format!(", {replayed} resumed/{remaining} remaining")
        } else {
            String::new()
        };
        let eta = if done {
            " done".into()
        } else if tests > 0 && (tests as usize) < total {
            let remaining = elapsed / tests as f64 * (total as f64 - tests as f64);
            format!(" eta {remaining:.0}s")
        } else {
            String::new()
        };
        eprintln!(
            "progress: {tests}/{total} tests, {positives} positive(s), prune {prune}{resumed}, {elapsed:.1}s{eta}"
        );
    }

    /// Stops the ticker thread after one last heartbeat. Idempotent; also
    /// runs from `Drop`, which is what guarantees the final line on the
    /// error and panic paths.
    fn finish(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        let (lock, cv) = &*self.shared;
        match lock.lock() {
            Ok(mut g) => *g = true,
            Err(p) => *p.into_inner() = true,
        }
        cv.notify_all();
        handle.join().ok();
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.finish();
    }
}

fn pipeline_config(o: &Opts) -> PipelineConfig {
    PipelineConfig {
        target_model: o.target_model.clone(),
        ..PipelineConfig::default()
    }
}

/// The campaign identity the journal is keyed by: the seed/count/shape
/// parameters that fully determine the fuzz stream. Cheap (no draining)
/// and exact — two invocations agree on the hash iff they generate the
/// same test stream.
fn stream_identity(o: &Opts) -> u64 {
    let mut h = fnv1a64(0, b"telechat-fuzz-stream-v1");
    for v in [o.seed, o.count as u64, o.comm as u64, o.po_run as u64] {
        h = fnv1a64(h, &v.to_le_bytes());
    }
    h
}

fn campaign(o: &Opts) -> Result<i32> {
    let mut source = FuzzSource::new(&o.fuzz_config());
    let mut spec = campaign_spec(o)?;
    let config = pipeline_config(o);
    spec.shard = o.shard;
    if o.journal.len() > 1 {
        return Err(Error::parse(
            "campaign takes one --journal (merge takes several)",
        ));
    }
    if let Some(path) = o.journal.first() {
        let fp = campaign_fingerprint(stream_identity(o), &spec, &config);
        let shard = o.shard.unwrap_or_else(ShardSpec::whole);
        spec.journal = Some(std::sync::Arc::new(CampaignJournal::open(path, fp, shard)?));
    }
    let mut ticker = o
        .progress
        .then(|| ProgressTicker::start(o.count, spec.journal.is_some()));
    let result = run_campaign_source(&mut source, &spec, &config);
    if let Some(ticker) = &mut ticker {
        ticker.finish();
    }
    let result = result?;
    println!("{result}");
    if let Some(path) = &o.trace {
        let report = result
            .obs
            .as_ref()
            .expect("--trace implies metrics collection");
        let io = |e: std::io::Error| Error::Io(e.to_string());
        let mut file = std::io::BufWriter::new(std::fs::File::create(path).map_err(io)?);
        report.write_jsonl(&mut file).map_err(io)?;
        std::io::Write::flush(&mut file).map_err(io)?;
        eprintln!(
            "trace: {} span(s), {} metric row(s) -> {}",
            report.spans.len(),
            report.counters.len(),
            path.display()
        );
    }
    println!(
        "fuzz stream: seed {} -> {} tests, fnv1a64 {:016x}",
        o.seed,
        source.emitted(),
        source.stream_hash()
    );
    for (test, profile) in &result.positive_tests {
        println!("  +ve: {test} under {profile}");
    }
    if o.assert_no_positive && result.total_positive() > 0 {
        eprintln!(
            "FAIL: {} positive difference(s) in a campaign expected clean",
            result.total_positive()
        );
        return Ok(1);
    }
    Ok(0)
}

/// `merge`: fold the completed journals of an N-way sharded campaign into
/// the unsharded result table. Validation (complete, disjoint, one
/// campaign, all sealed) lives in [`merge_journals`]; any violation is a
/// typed error and a non-zero exit.
fn merge(o: &Opts) -> Result<i32> {
    if o.journal.is_empty() {
        return Err(Error::parse("merge wants --journal PATH, once per shard"));
    }
    let journals = o
        .journal
        .iter()
        .map(CampaignJournal::open_existing)
        .collect::<Result<Vec<_>>>()?;
    let result = merge_journals(&journals)?;
    println!("{result}");
    for (test, profile) in &result.positive_tests {
        println!("  +ve: {test} under {profile}");
    }
    eprintln!(
        "merge: {} shard journal(s), campaign {:016x}",
        journals.len(),
        journals[0].fingerprint()
    );
    Ok(0)
}

fn hunt_and_minimize(o: &Opts) -> Result<i32> {
    let config = pipeline_config(o);
    let tool = Telechat::with_config(&o.source_model, config)?;
    let compiler = Compiler::new(o.compiler, o.opt, Target::new(o.arch));
    let mut source = FuzzSource::new(&o.fuzz_config());
    while let Some((shape, test)) = source.next_pair() {
        let Ok(report) = tool.run(&test, &compiler) else {
            continue;
        };
        if report.verdict != TestVerdict::PositiveDifference {
            continue;
        }
        println!("found: {} under {}", test.name, compiler.profile_name());
        let min = minimize_positive(&tool, &compiler, &shape)?;
        println!(
            "minimized in {} step(s), {} pipeline run(s):",
            min.trail.len(),
            min.checks
        );
        for step in &min.trail {
            println!("  - {step}");
        }
        println!(
            "1-minimal witness ({} edges): {}",
            min.shape.len(),
            min.shape.slug()
        );
        println!("{}", to_litmus(&min.test));
        return Ok(0);
    }
    println!(
        "no positive difference in {} seeded tests (seed {})",
        source.emitted(),
        o.seed
    );
    Ok(1)
}
