//! Cycle-space fuzzing (paper §II-A, generalised): instead of nine
//! hand-written families over a fixed grid, generate litmus tests from
//! *arbitrary* cycles of candidate relaxations — exhaustively up to a
//! budget, randomly (seeded) beyond it — canonically deduplicated so the
//! campaign never simulates an isomorphic test twice, and shrink every
//! positive difference to a 1-minimal witness.
//!
//! The subsystem in one picture:
//!
//! ```text
//!  enumerate (budgeted, exhaustive) ─┐
//!                                    ├─ canonical dedup ── FuzzSource ──► campaign (TestSource)
//!  sample (seeded, deep shapes) ─────┘                          │
//!                                                 positive difference
//!                                                               ▼
//!                                                  minimize (1-minimal witness)
//! ```
//!
//! * [`ShapedCycle`] — the unit of generation: edges × event directions ×
//!   access kinds, with rotation-invariant validity rules (see
//!   `shape`'s module docs for the exact rules).
//! * [`enumerate_shapes`]/[`corpus`] — exhaustive enumeration under a
//!   communication-edge budget with canonical (rotation-class) dedup.
//! * [`Sampler`] — byte-deterministic seeded sampling of deeper shapes.
//! * [`FuzzSource`] — the two-phase stream, an `Iterator<Item =
//!   LitmusTest>` and therefore a `telechat::TestSource`.
//! * [`minimize`] — delta debugging over the drop/weaken/merge lattice
//!   (documented in `minimize`'s module docs) until 1-minimal.
//!
//! The `telechat-fuzz` binary exposes `generate`, `campaign` and
//! `minimize` subcommands over the same machinery.

pub mod enumerate;
pub mod minimize;
pub mod sample;
pub mod shape;
pub mod source;

pub use enumerate::{corpus, enumerate_shapes, Alphabet, GenConfig};
pub use minimize::{
    minimize, minimize_cached, minimize_positive, minimize_positive_cached, minimize_worklist,
    reductions, MinimizeCache, Minimized,
};
pub use sample::{SampleConfig, Sampler};
pub use shape::{ShapedCycle, DEFAULT_KIND};
pub use source::{fnv1a64, FuzzConfig, FuzzSource};
