//! Seeded random sampling of deep shapes beyond the exhaustive frontier.
//!
//! The sampler draws structure (communication-edge count, per-thread run
//! lengths), edge choices, unconstrained directions and per-event access
//! kinds from one [`XorShiftRng`] stream, rejection-sampling until the
//! shape is well-formed. Everything is a pure function of the seed and the
//! draw index, so a fixed-seed stream is byte-identical on every machine
//! and for every campaign/simulation thread count — the campaign driver
//! pulls tests from the stream under a lock, in order, no matter how many
//! workers consume them.

use crate::enumerate::Alphabet;
use crate::shape::{ShapedCycle, DEFAULT_KIND};
use telechat_common::XorShiftRng;
use telechat_diy::{Dir, Edge};

/// Budgets for the random sampler (the deep-shape analogue of
/// [`crate::enumerate::GenConfig`]).
#[derive(Debug, Clone)]
pub struct SampleConfig {
    /// The edge/kind choices.
    pub alphabet: Alphabet,
    /// Minimum communication edges.
    pub min_comm: usize,
    /// Maximum communication edges (inclusive).
    pub max_comm: usize,
    /// Maximum consecutive intra-thread edges.
    pub max_po_run: usize,
    /// Cap on total edges.
    pub max_edges: usize,
    /// Cap on distinct locations.
    pub max_locs: usize,
}

impl Default for SampleConfig {
    /// Deep shapes: up to five threads, runs up to two edges — past the
    /// exhaustive corpus frontier but still litmus-sized.
    fn default() -> SampleConfig {
        SampleConfig {
            alphabet: Alphabet::c11(),
            min_comm: 2,
            max_comm: 5,
            max_po_run: 2,
            max_edges: 12,
            max_locs: 8,
        }
    }
}

/// A deterministic stream of well-formed canonical shapes.
#[derive(Debug, Clone)]
pub struct Sampler {
    cfg: SampleConfig,
    rng: XorShiftRng,
}

impl Sampler {
    /// A sampler over `cfg` seeded with `seed`.
    pub fn new(cfg: SampleConfig, seed: u64) -> Sampler {
        Sampler {
            cfg,
            rng: XorShiftRng::seed_from_u64(seed),
        }
    }

    fn pick<T: Copy>(rng: &mut XorShiftRng, xs: &[T]) -> T {
        xs[rng.below(xs.len() as u64) as usize]
    }

    /// Draws one raw candidate (may be ill-formed).
    fn draw(&mut self) -> ShapedCycle {
        let cfg = &self.cfg;
        let rng = &mut self.rng;
        let comm = cfg.min_comm + rng.below((cfg.max_comm - cfg.min_comm + 1) as u64) as usize;
        let mut edges = Vec::new();
        for ci in 0..comm {
            // Leave room for the communication edges not yet placed.
            let reserved = comm - ci;
            let budget_left = cfg.max_edges.saturating_sub(edges.len() + reserved);
            let run = (rng.below(cfg.max_po_run as u64 + 1) as usize).min(budget_left);
            for _ in 0..run {
                edges.push(Self::pick(rng, &cfg.alphabet.po));
            }
            edges.push(Self::pick(rng, &cfg.alphabet.comm));
        }
        let mut shape = ShapedCycle::new(edges);
        if let Ok(derived) = shape.event_dirs() {
            #[allow(clippy::needless_range_loop)] // i indexes dirs, kinds and derived alike
            for i in 0..shape.len() {
                let dir = match derived[i] {
                    Some(d) => d,
                    None => {
                        // Unconstrained event: flip a coin and pin it.
                        let d = if rng.below(2) == 0 { Dir::W } else { Dir::R };
                        shape.dirs[i] = Some(d);
                        d
                    }
                };
                let palette = match dir {
                    Dir::R => &cfg.alphabet.read_kinds,
                    Dir::W => &cfg.alphabet.write_kinds,
                };
                shape.kinds[i] = if palette.is_empty() {
                    DEFAULT_KIND
                } else {
                    Self::pick(rng, palette)
                };
            }
        }
        shape
    }

    /// The next well-formed shape, in canonical form.
    ///
    /// Rejection sampling is bounded; the two-thread families are dense in
    /// every sensible alphabet, so the fallback (a plain store-buffering
    /// shape) is unreachable in practice but keeps the stream total.
    pub fn next_shape(&mut self) -> ShapedCycle {
        for _ in 0..10_000 {
            let shape = self.draw();
            if shape.is_well_formed() && shape.loc_count() <= self.cfg.max_locs {
                return shape.canonical();
            }
        }
        ShapedCycle::new(vec![
            Edge::Po { sameloc: false },
            Edge::Fre,
            Edge::Po { sameloc: false },
            Edge::Fre,
        ])
        .canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_streams_are_identical() {
        let mut a = Sampler::new(SampleConfig::default(), 42);
        let mut b = Sampler::new(SampleConfig::default(), 42);
        for _ in 0..50 {
            assert_eq!(a.next_shape(), b.next_shape());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Sampler::new(SampleConfig::default(), 1);
        let mut b = Sampler::new(SampleConfig::default(), 2);
        let xs: Vec<_> = (0..10).map(|_| a.next_shape()).collect();
        let ys: Vec<_> = (0..10).map(|_| b.next_shape()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn samples_are_well_formed_canonical_and_within_budget() {
        let cfg = SampleConfig::default();
        let mut s = Sampler::new(cfg.clone(), 7);
        for _ in 0..200 {
            let shape = s.next_shape();
            assert!(shape.is_well_formed(), "{}", shape.slug());
            assert_eq!(shape, shape.canonical());
            assert!(shape.len() <= cfg.max_edges);
            assert!(shape.comm_count() <= cfg.max_comm);
        }
    }

    #[test]
    fn sampler_reaches_past_the_exhaustive_frontier() {
        let mut s = Sampler::new(SampleConfig::default(), 3);
        let deep = (0..300).any(|_| s.next_shape().comm_count() > 4);
        assert!(deep, "expected a >4-thread shape in 300 draws");
    }
}
