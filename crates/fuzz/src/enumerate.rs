//! Exhaustive enumeration of well-formed cycles up to a configurable
//! budget, with canonical dedup.
//!
//! The budget that matters is the number of **communication edges** — it
//! equals the thread count and bounds how deep a relaxation the cycle can
//! witness; the nine hand-written [`telechat_diy::Family`] shapes all have
//! two or three. Between consecutive communication edges sits a *run* of
//! intra-thread edges (`max_po_run` bounds its length; the families all
//! use runs of length ≤ 1), and `max_edges` caps the total. The enumerated
//! dimensions are exactly the tentpole's grid: edge choice per position ×
//! direction of unconstrained events × access kind (with its ordering
//! annotation) per event.
//!
//! Every generated sequence ends with a communication edge — the
//! synthesiser's anchor. Since canonical dedup identifies rotations, this
//! loses no shapes: every cycle with a communication edge has such a
//! rotation.

use crate::shape::{ShapedCycle, DEFAULT_KIND};
use std::collections::BTreeSet;
use telechat_common::Annot;
use telechat_diy::{AccessKind, Dir, Edge};
use telechat_litmus::LitmusTest;

/// The edge and access-kind choices open to the generators.
#[derive(Debug, Clone)]
pub struct Alphabet {
    /// Intra-thread (program-order-like) edge choices.
    pub po: Vec<Edge>,
    /// Communication edge choices.
    pub comm: Vec<Edge>,
    /// Access kinds tried for read events.
    pub read_kinds: Vec<AccessKind>,
    /// Access kinds tried for write events.
    pub write_kinds: Vec<AccessKind>,
}

impl Alphabet {
    /// The corpus alphabet: every structural edge flavour — plain po (same
    /// and different location), dependency, control, one fence
    /// representative (`sc`) — over relaxed atomics. Ordering strength is
    /// a per-event annotation dimension, so weaker fence flavours and
    /// stronger access kinds are left to [`Alphabet::c11`] and the kind
    /// palettes rather than multiplying the structural corpus.
    pub fn corpus() -> Alphabet {
        Alphabet {
            po: vec![
                Edge::Po { sameloc: false },
                Edge::Po { sameloc: true },
                Edge::Dp,
                Edge::Ctrl,
                Edge::Fenced {
                    order: Annot::SeqCst,
                },
            ],
            comm: vec![Edge::Rfe, Edge::Fre, Edge::Coe],
            read_kinds: vec![DEFAULT_KIND],
            write_kinds: vec![DEFAULT_KIND],
        }
    }

    /// The full C11 alphabet ([`telechat_diy::Config::c11`]'s construct
    /// mix): all fence strengths and the per-direction ordering palette,
    /// RMWs standing in for both slots. Used by the seeded sampler, where
    /// the combinatorics are paid per sample instead of per corpus.
    pub fn c11() -> Alphabet {
        Alphabet {
            po: vec![
                Edge::Po { sameloc: false },
                Edge::Po { sameloc: true },
                Edge::Dp,
                Edge::Ctrl,
                Edge::Fenced {
                    order: Annot::Relaxed,
                },
                Edge::Fenced {
                    order: Annot::Acquire,
                },
                Edge::Fenced {
                    order: Annot::Release,
                },
                Edge::Fenced {
                    order: Annot::AcqRel,
                },
                Edge::Fenced {
                    order: Annot::SeqCst,
                },
            ],
            comm: vec![Edge::Rfe, Edge::Fre, Edge::Coe],
            read_kinds: vec![
                AccessKind::Atomic(Annot::Relaxed),
                AccessKind::Atomic(Annot::Acquire),
                AccessKind::Atomic(Annot::SeqCst),
                AccessKind::Rmw(Annot::Relaxed),
            ],
            write_kinds: vec![
                AccessKind::Atomic(Annot::Relaxed),
                AccessKind::Atomic(Annot::Release),
                AccessKind::Atomic(Annot::SeqCst),
                AccessKind::Rmw(Annot::Relaxed),
            ],
        }
    }
}

/// Budgets and switches for exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// The edge/kind choices.
    pub alphabet: Alphabet,
    /// Minimum communication edges (< 2 is never useful; see validity).
    pub min_comm: usize,
    /// Maximum communication edges — the headline budget (= max threads).
    pub max_comm: usize,
    /// Maximum consecutive intra-thread edges (events per thread − 1).
    pub max_po_run: usize,
    /// Cap on total edges.
    pub max_edges: usize,
    /// Cap on distinct locations.
    pub max_locs: usize,
    /// Enumerate both directions of unconstrained events (interior events
    /// of runs of length ≥ 2; with `max_po_run ≤ 1` there are none).
    pub enumerate_dirs: bool,
    /// Enumerate access kinds from the alphabet's palettes (palettes of
    /// one, as in [`Alphabet::corpus`], leave shapes all-relaxed).
    pub enumerate_kinds: bool,
}

impl GenConfig {
    /// The pinned-corpus configuration at the given communication budget.
    pub fn corpus(max_comm: usize) -> GenConfig {
        GenConfig {
            alphabet: Alphabet::corpus(),
            min_comm: 2,
            max_comm,
            max_po_run: 1,
            max_edges: max_comm * 2,
            max_locs: max_comm * 2,
            enumerate_dirs: true,
            enumerate_kinds: true,
        }
    }
}

/// Exhaustively enumerates the canonical representatives of every
/// well-formed shape within `cfg`'s budgets, sorted. The result is free of
/// isomorphic (rotation-equivalent) duplicates by construction.
pub fn enumerate_shapes(cfg: &GenConfig) -> Vec<ShapedCycle> {
    let mut set: BTreeSet<ShapedCycle> = BTreeSet::new();
    let mut edges: Vec<Edge> = Vec::new();
    for comm in cfg.min_comm.max(1)..=cfg.max_comm {
        build_runs(cfg, comm, &mut edges, &mut set);
    }
    set.into_iter().collect()
}

/// Recursively appends one `run + comm-edge` block per remaining
/// communication slot, then expands directions and kinds.
fn build_runs(
    cfg: &GenConfig,
    comm_left: usize,
    edges: &mut Vec<Edge>,
    set: &mut BTreeSet<ShapedCycle>,
) {
    if comm_left == 0 {
        expand_shape(cfg, edges, set);
        return;
    }
    // Room for the remaining communication edges?
    if edges.len() + comm_left > cfg.max_edges {
        return;
    }
    for run_len in 0..=cfg.max_po_run {
        if edges.len() + run_len + comm_left > cfg.max_edges {
            break;
        }
        build_po_run(cfg, comm_left, run_len, edges, set);
    }
}

fn build_po_run(
    cfg: &GenConfig,
    comm_left: usize,
    run_left: usize,
    edges: &mut Vec<Edge>,
    set: &mut BTreeSet<ShapedCycle>,
) {
    if run_left == 0 {
        for &c in &cfg.alphabet.comm {
            edges.push(c);
            build_runs(cfg, comm_left - 1, edges, set);
            edges.pop();
        }
        return;
    }
    for &p in &cfg.alphabet.po {
        edges.push(p);
        build_po_run(cfg, comm_left, run_left - 1, edges, set);
        edges.pop();
    }
}

/// Filters a complete edge sequence and expands the direction and kind
/// dimensions into canonical shapes.
fn expand_shape(cfg: &GenConfig, edges: &[Edge], set: &mut BTreeSet<ShapedCycle>) {
    let base = ShapedCycle::new(edges.to_vec());
    if !base.is_well_formed() || base.loc_count() > cfg.max_locs {
        return;
    }
    let derived = match base.event_dirs() {
        Ok(d) => d,
        Err(_) => return,
    };
    let free: Vec<usize> = if cfg.enumerate_dirs {
        derived
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect()
    } else {
        Vec::new()
    };

    // Odometer over the free events' directions (2^free, usually 1).
    for mask in 0u32..(1 << free.len()) {
        let mut shape = base.clone();
        for (bit, &i) in free.iter().enumerate() {
            shape.dirs[i] = Some(if mask & (1 << bit) != 0 { Dir::R } else { Dir::W });
        }
        // Pinning a direction can violate the semantic rules the unpinned
        // base passed (e.g. Dir::R on the target of a dp edge); re-check
        // so every emitted shape honours the well-formedness guarantee.
        if !free.is_empty() && !shape.is_well_formed() {
            continue;
        }
        if cfg.enumerate_kinds {
            // Per-event palettes by final direction (unconstrained events
            // default to writes in the synthesiser).
            let palettes: Vec<&[AccessKind]> = (0..shape.len())
                .map(|i| {
                    let dir = shape.dirs[i].or(derived[i]).unwrap_or(Dir::W);
                    match dir {
                        Dir::R => cfg.alphabet.read_kinds.as_slice(),
                        Dir::W => cfg.alphabet.write_kinds.as_slice(),
                    }
                })
                .collect();
            expand_kinds(&mut shape, &palettes, 0, set);
        } else {
            set.insert(shape.canonical());
        }
    }
}

fn expand_kinds(
    shape: &mut ShapedCycle,
    palettes: &[&[AccessKind]],
    event: usize,
    set: &mut BTreeSet<ShapedCycle>,
) {
    if event == shape.len() {
        set.insert(shape.canonical());
        return;
    }
    for &k in palettes[event] {
        shape.kinds[event] = k;
        expand_kinds(shape, palettes, event + 1, set);
    }
    shape.kinds[event] = DEFAULT_KIND;
}

/// Enumerates and synthesises: the canonical **corpus** — every shape of
/// [`enumerate_shapes`] that synthesises a non-vacuous litmus test, paired
/// with that test (named `FZ+<slug>`), in canonical order.
pub fn corpus(cfg: &GenConfig) -> Vec<(ShapedCycle, LitmusTest)> {
    enumerate_shapes(cfg)
        .into_iter()
        .filter_map(|s| {
            let name = format!("FZ+{}", s.slug());
            s.synthesise_any(name).ok().map(|t| (s, t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budget_contains_the_two_thread_families() {
        let shapes = enumerate_shapes(&GenConfig::corpus(2));
        for edges in [
            vec![Edge::Po { sameloc: false }, Edge::Rfe, Edge::Po { sameloc: false }, Edge::Fre],
            vec![Edge::Po { sameloc: false }, Edge::Rfe, Edge::Po { sameloc: false }, Edge::Rfe],
            vec![Edge::Po { sameloc: false }, Edge::Fre, Edge::Po { sameloc: false }, Edge::Fre],
        ] {
            let canon = ShapedCycle::new(edges).canonical();
            assert!(shapes.contains(&canon), "{}", canon.slug());
        }
    }

    #[test]
    fn shapes_are_canonical_sorted_and_unique() {
        let shapes = enumerate_shapes(&GenConfig::corpus(2));
        for w in shapes.windows(2) {
            assert!(w[0] < w[1], "sorted + unique");
        }
        for s in &shapes {
            assert_eq!(*s, s.canonical(), "{}", s.slug());
            assert!(s.is_well_formed(), "{}", s.slug());
        }
    }

    #[test]
    fn corpus_drops_vacuous_shapes() {
        let cfg = GenConfig::corpus(2);
        let shapes = enumerate_shapes(&cfg).len();
        let corpus = corpus(&cfg);
        assert!(corpus.len() < shapes, "coe;coe-style shapes must drop");
        assert!(!corpus.is_empty());
        for (s, t) in &corpus {
            assert_eq!(t.name, format!("FZ+{}", s.slug()));
        }
    }

    #[test]
    fn dir_enumeration_covers_interior_reads() {
        // Runs of length 2 have an unconstrained interior event; with
        // enumerate_dirs both directions must appear.
        let cfg = GenConfig {
            max_po_run: 2,
            max_edges: 6,
            ..GenConfig::corpus(2)
        };
        let shapes = enumerate_shapes(&cfg);
        assert!(shapes.iter().any(|s| s.dirs.contains(&Some(Dir::R))));
        assert!(shapes.iter().any(|s| s.dirs.contains(&Some(Dir::W))));
        // The direction odometer must not leak shapes whose pins violate
        // the semantic rules the unpinned base passed (a Dir::R pin on a
        // dp-edge target used to slip through).
        for s in &shapes {
            assert!(s.is_well_formed(), "{}", s.slug());
        }
    }
}
