//! The fuzz stream: exhaustive canonical corpus first, seeded deep samples
//! after, deduplicated across both phases — packaged as an
//! `Iterator<Item = LitmusTest>`, which is exactly what the campaign
//! driver's `telechat::TestSource` accepts.

use crate::enumerate::{corpus, GenConfig};
use crate::sample::{SampleConfig, Sampler};
use crate::shape::ShapedCycle;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use telechat_litmus::LitmusTest;

/// FNV-1a over bytes, chained: the corpus/stream fingerprint. The single
/// definition now lives with the canonical-fingerprint machinery in
/// `telechat_litmus::fingerprint` (the campaign cache keys reuse it);
/// re-exported here for the existing fuzz callers.
pub use telechat_litmus::fingerprint::fnv1a64;

/// Configuration of a [`FuzzSource`] stream.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Exhaustive phase budgets (phase 1).
    pub exhaustive: GenConfig,
    /// Sampler budgets (phase 2, after the corpus is exhausted).
    pub sample: SampleConfig,
    /// Seed for the sampling phase.
    pub seed: u64,
    /// Total number of tests the stream emits.
    pub max_tests: usize,
}

impl FuzzConfig {
    /// A small smoke stream: the two-thread corpus then seeded samples.
    pub fn smoke(seed: u64, max_tests: usize) -> FuzzConfig {
        FuzzConfig {
            exhaustive: GenConfig::corpus(2),
            sample: SampleConfig::default(),
            seed,
            max_tests,
        }
    }
}

/// A deterministic, deduplicated stream of fuzz-generated litmus tests.
///
/// Byte-determinism contract: the sequence of emitted tests — and therefore
/// [`FuzzSource::stream_hash`] — is a pure function of the [`FuzzConfig`].
/// Campaign or simulation thread counts play no part: the campaign driver
/// pulls from the iterator under a lock in a fixed order.
#[derive(Debug)]
pub struct FuzzSource {
    queue: VecDeque<(ShapedCycle, LitmusTest)>,
    sampler: Sampler,
    seen: BTreeSet<ShapedCycle>,
    emitted: usize,
    max_tests: usize,
    hash: u64,
}

impl FuzzSource {
    /// Builds the stream (synthesises the exhaustive corpus eagerly).
    pub fn new(cfg: &FuzzConfig) -> FuzzSource {
        let corpus = corpus(&cfg.exhaustive);
        let seen = corpus.iter().map(|(s, _)| s.clone()).collect();
        FuzzSource {
            queue: corpus.into_iter().collect(),
            sampler: Sampler::new(cfg.sample.clone(), cfg.seed),
            seen,
            emitted: 0,
            max_tests: cfg.max_tests,
            hash: 0,
        }
    }

    /// Number of tests emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Chained FNV-1a fingerprint of every test emitted so far (printed
    /// litmus text). Two equal-seed streams agree on this at every point.
    pub fn stream_hash(&self) -> u64 {
        self.hash
    }

    /// The next shape with its synthesised test — what [`Iterator::next`]
    /// yields minus the shape, for callers (the minimizer CLI, the hunt
    /// example) that need the generating cycle back.
    pub fn next_pair(&mut self) -> Option<(ShapedCycle, LitmusTest)> {
        if self.emitted >= self.max_tests {
            return None;
        }
        let (shape, test) = match self.queue.pop_front() {
            Some(item) => item,
            None => self.next_sampled()?,
        };
        self.emitted += 1;
        self.hash = fnv1a64(self.hash, telechat_litmus::print::to_litmus(&test).as_bytes());
        // Coverage accounting: which edge kinds and canonical shape
        // classes the stream actually exercised. The campaign driver
        // pulls tests under its frontier lock in a fixed order, so these
        // tallies are a pure function of the work list — deterministic
        // across thread counts like every other `count`-class row. Gated:
        // the labels are only formatted while a metrics window is open.
        if telechat_obs::enabled() {
            for edge in &shape.edges {
                telechat_obs::add_labelled(&format!("coverage.edge.{edge}"), 1);
            }
            telechat_obs::add_labelled(
                &format!("coverage.shape.comm{}", shape.comm_count()),
                1,
            );
        }
        Some((shape, test))
    }

    /// The next not-yet-seen canonical shape from the sampler, with its
    /// synthesised test. Bounded: if the sampler space is saturated the
    /// stream simply ends.
    fn next_sampled(&mut self) -> Option<(ShapedCycle, LitmusTest)> {
        for _ in 0..10_000 {
            let shape = self.sampler.next_shape();
            if !self.seen.insert(shape.clone()) {
                continue;
            }
            let name = format!("FZ+{}", shape.slug());
            if let Ok(test) = shape.synthesise_any(name) {
                return Some((shape, test));
            }
        }
        None
    }
}

impl Iterator for FuzzSource {
    type Item = LitmusTest;

    fn next(&mut self) -> Option<LitmusTest> {
        self.next_pair().map(|(_, test)| test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_deduplicated() {
        let cfg = FuzzConfig::smoke(9, 64);
        let a: Vec<LitmusTest> = FuzzSource::new(&cfg).collect();
        let b: Vec<LitmusTest> = FuzzSource::new(&cfg).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        let mut names: Vec<_> = a.iter().map(|t| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), a.len(), "no duplicate shapes");
    }

    #[test]
    fn stream_hash_tracks_content() {
        let cfg = FuzzConfig::smoke(9, 16);
        let mut a = FuzzSource::new(&cfg);
        let mut b = FuzzSource::new(&cfg);
        while let (Some(x), Some(y)) = (a.next(), b.next()) {
            assert_eq!(x, y);
            assert_eq!(a.stream_hash(), b.stream_hash());
        }
        assert_ne!(a.stream_hash(), 0);
        // Once the stream is past the (seed-independent) exhaustive corpus,
        // the seed drives the tail.
        let corpus_len = crate::enumerate::corpus(&FuzzConfig::smoke(0, 0).exhaustive).len();
        let tail_hash = |seed| {
            let mut s = FuzzSource::new(&FuzzConfig::smoke(seed, corpus_len + 8));
            s.by_ref().for_each(drop);
            s.stream_hash()
        };
        assert_ne!(tail_hash(9), tail_hash(10), "seed changes the tail");
    }

    #[test]
    fn corpus_phase_precedes_sampling() {
        let cfg = FuzzConfig::smoke(5, usize::MAX);
        let corpus_len = crate::enumerate::corpus(&cfg.exhaustive).len();
        let mut src = FuzzSource::new(&cfg);
        let first: Vec<_> = src.by_ref().take(corpus_len).collect();
        assert_eq!(first.len(), corpus_len);
        // Every corpus test carries its canonical slug name.
        assert!(first.iter().all(|t| t.name.starts_with("FZ+")));
    }
}
