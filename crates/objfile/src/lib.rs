//! Miniature object files: sections, symbols, relocations and a DWARF-like
//! variable map.
//!
//! The paper's §III-D names the central engineering challenge of Téléchat:
//! *compiled programs represent memory locations as binary addresses laid
//! out in ELF sections, while litmus tests use symbolic variables*. This
//! crate reproduces that gap faithfully at miniature scale:
//!
//! * the compiler emits functions whose instructions carry **symbolic**
//!   operands plus a relocation table (`-c` object emission);
//! * [`ObjectFile::link`] lays data out into `.data`/`.rodata`/`.got`
//!   sections, assigns numeric addresses and rewrites instruction operands
//!   to raw addresses (what `objdump` shows on a linked binary);
//! * [`ObjectFile::disassemble`] produces an `objdump -d`-style listing;
//! * [`ObjectFile::symbolise`] maps an address back to its symbol using the
//!   symbol table and debug entries — the `s2l` stage's input.
//!
//! # Example
//!
//! ```
//! use telechat_objfile::ObjectFile;
//! use telechat_common::{Arch, Val};
//! use telechat_litmus::Width;
//!
//! let mut obj = ObjectFile::new(Arch::AArch64);
//! obj.add_data("x", Val::Int(0), Width::W64, false);
//! obj.link();
//! let addr = obj.symbol("x").unwrap().addr;
//! assert_eq!(obj.symbolise(addr).unwrap().as_str(), "x");
//! ```

use std::collections::BTreeMap;
use std::fmt;
use telechat_common::{Arch, Error, Loc, Result, Val};
use telechat_isa::{aarch64, armv7, mips, ppc, riscv, x86, AsmCode, SymRef};
use telechat_litmus::Width;

/// A loadable section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.data`, `.rodata`, `.got`, `.text`).
    pub name: String,
    /// Base virtual address after linking.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// True for read-only sections (stores here crash at run time).
    pub readonly: bool,
}

/// A data symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (the litmus location).
    pub name: String,
    /// Assigned virtual address (0 before linking).
    pub addr: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Containing section name.
    pub section: String,
}

/// A DWARF-like debug entry tying a symbol to its C declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugVar {
    /// Symbol name.
    pub symbol: String,
    /// Source-level type (e.g. `atomic_int`, `const _Atomic __int128`).
    pub c_type: String,
    /// True if declared `const` (lives in `.rodata`).
    pub readonly: bool,
}

/// A relocation: instruction `index` of function `func` refers to `symbol`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Function (thread) name, e.g. `P0`.
    pub func: String,
    /// Symbol-slot index within the function (in operand-visit order).
    pub index: usize,
    /// Referenced symbol.
    pub symbol: String,
}

/// A compiled function: a thread body in typed instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (`P0`, `P1`, …).
    pub name: String,
    /// The instructions.
    pub code: AsmCode,
    /// Text-section address of the first instruction (after linking).
    pub offset: u64,
}

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingLine {
    /// Instruction virtual address.
    pub addr: u64,
    /// Rendered instruction text.
    pub text: String,
}

/// An `objdump -d`-style listing of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listing {
    /// Function name.
    pub func: String,
    /// The lines.
    pub lines: Vec<ListingLine>,
}

impl fmt::Display for Listing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "<{}>:", self.func)?;
        for l in &self.lines {
            writeln!(f, "  {:#08x}:\t{}", l.addr, l.text)?;
        }
        Ok(())
    }
}

const DATA_BASE: u64 = 0x11000;
const RODATA_BASE: u64 = 0x20000;
const GOT_BASE: u64 = 0x30000;
const TEXT_BASE: u64 = 0x40000;
const INSTR_BYTES: u64 = 4;

/// A miniature relocatable object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectFile {
    /// Target architecture.
    pub arch: Arch,
    /// Sections (populated by [`ObjectFile::link`]).
    pub sections: Vec<Section>,
    /// Data symbols.
    pub symbols: Vec<Symbol>,
    /// Debug (DWARF-like) entries.
    pub debug: Vec<DebugVar>,
    /// Functions in emission order.
    pub functions: Vec<Function>,
    /// Relocations (recorded at emission, resolved by linking).
    pub relocs: Vec<Reloc>,
    /// Initial values per symbol (the `.data` image).
    pub data_init: BTreeMap<String, Val>,
    linked: bool,
}

impl ObjectFile {
    /// An empty object for `arch`.
    pub fn new(arch: Arch) -> ObjectFile {
        ObjectFile {
            arch,
            sections: Vec::new(),
            symbols: Vec::new(),
            debug: Vec::new(),
            functions: Vec::new(),
            relocs: Vec::new(),
            data_init: BTreeMap::new(),
            linked: false,
        }
    }

    /// Declares a data symbol with its initial value.
    pub fn add_data(&mut self, name: &str, init: Val, width: Width, readonly: bool) {
        let section = if readonly { ".rodata" } else { ".data" };
        self.symbols.push(Symbol {
            name: name.to_string(),
            addr: 0,
            size: width.bytes(),
            section: section.to_string(),
        });
        self.debug.push(DebugVar {
            symbol: name.to_string(),
            c_type: match (readonly, width) {
                (true, Width::W128) => "const _Atomic __int128".into(),
                (true, _) => "const atomic_int".into(),
                (false, Width::W128) => "_Atomic __int128".into(),
                (false, _) => "atomic_int".into(),
            },
            readonly,
        });
        self.data_init.insert(name.to_string(), init);
    }

    /// Declares a GOT slot for `sym` (holds `&sym`; read by GOT-load
    /// instructions in unoptimised code). Idempotent.
    pub fn add_got_slot(&mut self, sym: &str) {
        self.add_pointer_slot("got", sym);
    }

    /// Declares a pointer slot `prefix.sym` holding `&sym` — GOT entries
    /// (`got.x`), PowerPC TOC entries (`toc.x`) and Armv7 literal-pool
    /// slots (`lit.x`) all take this shape. Idempotent.
    pub fn add_pointer_slot(&mut self, prefix: &str, sym: &str) {
        let name = format!("{prefix}.{sym}");
        if self.symbols.iter().any(|s| s.name == name) {
            return;
        }
        self.symbols.push(Symbol {
            name: name.clone(),
            addr: 0,
            size: 8,
            section: ".got".to_string(),
        });
        self.data_init
            .insert(name, Val::Addr(Loc::new(sym)));
    }

    /// Appends a function, recording relocations for its symbolic operands.
    pub fn add_function(&mut self, name: &str, code: AsmCode) {
        self.relocs.extend(collect_relocs(name, &code));
        self.functions.push(Function {
            name: name.to_string(),
            code,
            offset: 0,
        });
    }

    /// Lays out sections, assigns symbol addresses and rewrites instruction
    /// operands from symbols to raw addresses (the state a stripped binary's
    /// disassembly shows).
    pub fn link(&mut self) {
        let mut bases: BTreeMap<&str, u64> = [
            (".data", DATA_BASE),
            (".rodata", RODATA_BASE),
            (".got", GOT_BASE),
        ]
        .into_iter()
        .collect();
        for sym in &mut self.symbols {
            let base = bases.get_mut(sym.section.as_str()).expect("known section");
            sym.addr = *base;
            *base += sym.size.max(8).next_multiple_of(8);
        }
        let mut text_off = 0;
        for func in &mut self.functions {
            func.offset = TEXT_BASE + text_off;
            text_off += func.code.len() as u64 * INSTR_BYTES;
        }
        self.sections = vec![
            Section {
                name: ".data".into(),
                base: DATA_BASE,
                size: bases[".data"] - DATA_BASE,
                readonly: false,
            },
            Section {
                name: ".rodata".into(),
                base: RODATA_BASE,
                size: bases[".rodata"] - RODATA_BASE,
                readonly: true,
            },
            Section {
                name: ".got".into(),
                base: GOT_BASE,
                size: bases[".got"] - GOT_BASE,
                readonly: false,
            },
            Section {
                name: ".text".into(),
                base: TEXT_BASE,
                size: text_off,
                readonly: true,
            },
        ];
        // Rewrite symbolic operands to raw addresses.
        let table: BTreeMap<String, u64> = self
            .symbols
            .iter()
            .map(|s| (s.name.clone(), s.addr))
            .collect();
        for func in &mut self.functions {
            map_code_syms(&mut func.code, &|s: &SymRef| match s {
                SymRef::Sym(l) => table
                    .get(l.as_str())
                    .map(|&a| SymRef::Addr(a))
                    .unwrap_or_else(|| s.clone()),
                SymRef::Addr(_) => s.clone(),
            });
        }
        self.linked = true;
    }

    /// True once [`ObjectFile::link`] has run.
    pub fn is_linked(&self) -> bool {
        self.linked
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Maps a virtual address back to the symbol covering it — the
    /// symbol-table half of `s2l` symbolisation. Exact base addresses and
    /// addresses within a symbol's extent both resolve.
    pub fn symbolise(&self, addr: u64) -> Option<Loc> {
        self.symbols
            .iter()
            .find(|s| addr >= s.addr && addr < s.addr + s.size.max(8))
            .map(|s| Loc::new(s.name.clone()))
    }

    /// The debug entry for a symbol (the DWARF half of symbolisation,
    /// carrying `const`-ness and the C type).
    pub fn debug_of(&self, name: &str) -> Option<&DebugVar> {
        self.debug.iter().find(|d| d.symbol == name)
    }

    /// Restores symbolic operands in all functions via
    /// [`ObjectFile::symbolise`] — what `s2l` does with the listing before
    /// building an assembly litmus test.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IllFormed`] if an address resolves to no symbol
    /// (missing debug info — the paper: "our technique is as accurate as the
    /// metadata compilers provide").
    pub fn symbolised_functions(&self) -> Result<Vec<Function>> {
        let mut out = Vec::with_capacity(self.functions.len());
        for f in &self.functions {
            let mut code = f.code.clone();
            let missing = std::cell::Cell::new(None::<u64>);
            map_code_syms(&mut code, &|s: &SymRef| match s {
                SymRef::Addr(a) => match self.symbolise(*a) {
                    Some(l) => SymRef::Sym(l),
                    None => {
                        if missing.get().is_none() {
                            missing.set(Some(*a));
                        }
                        SymRef::Addr(*a)
                    }
                },
                SymRef::Sym(l) => SymRef::Sym(l.clone()),
            });
            if let Some(a) = missing.get() {
                return Err(Error::IllFormed(format!(
                    "address {a:#x} has no covering symbol (missing debug info)"
                )));
            }
            out.push(Function {
                name: f.name.clone(),
                code,
                offset: f.offset,
            });
        }
        Ok(out)
    }

    /// Produces `objdump -d`-style listings (raw addresses, as linked).
    pub fn disassemble(&self) -> Vec<Listing> {
        self.functions
            .iter()
            .map(|f| Listing {
                func: f.name.clone(),
                lines: f
                    .code
                    .lines()
                    .into_iter()
                    .enumerate()
                    .map(|(i, text)| ListingLine {
                        addr: f.offset + i as u64 * INSTR_BYTES,
                        text,
                    })
                    .collect(),
            })
            .collect()
    }
}

/// Applies `f` to every symbol reference in a typed code body.
fn map_code_syms(code: &mut AsmCode, f: &dyn Fn(&SymRef) -> SymRef) {
    match code {
        AsmCode::A64(v) => aarch64::map_syms(v, f),
        AsmCode::Armv7(v) => armv7::map_syms(v, f),
        AsmCode::X86(v) => x86::map_syms(v, f),
        AsmCode::RiscV(v) => riscv::map_syms(v, f),
        AsmCode::Ppc(v) => ppc::map_syms(v, f),
        AsmCode::Mips(v) => mips::map_syms(v, f),
    }
}

/// Walks the symbol slots of `code` in visit order, recording a relocation
/// for each symbolic operand.
fn collect_relocs(func: &str, code: &AsmCode) -> Vec<Reloc> {
    let state = std::cell::RefCell::new((0usize, Vec::new()));
    let mut scratch = code.clone();
    map_code_syms(&mut scratch, &|s: &SymRef| {
        let mut st = state.borrow_mut();
        if let SymRef::Sym(l) = s {
            let index = st.0;
            st.1.push(Reloc {
                func: func.to_string(),
                index,
                symbol: l.to_string(),
            });
        }
        st.0 += 1;
        s.clone()
    });
    state.into_inner().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_isa::aarch64::A64Instr;

    fn sample() -> ObjectFile {
        let mut obj = ObjectFile::new(Arch::AArch64);
        obj.add_data("x", Val::Int(0), Width::W64, false);
        obj.add_data("y", Val::Int(0), Width::W64, false);
        obj.add_data("c", Val::Int(5), Width::W64, true);
        obj.add_got_slot("x");
        obj.add_function(
            "P0",
            AsmCode::A64(vec![
                A64Instr::Adrp {
                    dst: "x8".into(),
                    sym: "x".into(),
                },
                A64Instr::AddLo12 {
                    dst: "x8".into(),
                    src: "x8".into(),
                    sym: "x".into(),
                },
                A64Instr::Ldr {
                    dst: "w0".into(),
                    base: "x8".into(),
                },
            ]),
        );
        obj
    }

    #[test]
    fn linking_assigns_distinct_addresses() {
        let mut obj = sample();
        obj.link();
        let x = obj.symbol("x").unwrap().addr;
        let y = obj.symbol("y").unwrap().addr;
        let c = obj.symbol("c").unwrap().addr;
        assert_ne!(x, y);
        assert!(x >= DATA_BASE && y >= DATA_BASE);
        assert!(c >= RODATA_BASE, "const data goes to .rodata");
        assert!(obj.symbol("got.x").unwrap().addr >= GOT_BASE);
        assert!(obj.is_linked());
    }

    #[test]
    fn link_rewrites_operands_to_addresses() {
        let mut obj = sample();
        obj.link();
        let listing = &obj.disassemble()[0];
        // After linking the adrp shows a raw address, not `x`.
        assert!(
            listing.lines[0].text.contains("0x11"),
            "{}",
            listing.lines[0].text
        );
    }

    #[test]
    fn symbolise_round_trip() {
        let mut obj = sample();
        obj.link();
        let funcs = obj.symbolised_functions().unwrap();
        let AsmCode::A64(code) = &funcs[0].code else {
            panic!("arch");
        };
        match &code[0] {
            A64Instr::Adrp { sym, .. } => {
                assert_eq!(sym.as_sym().unwrap().as_str(), "x");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symbolise_within_extent() {
        let mut obj = sample();
        obj.link();
        let base = obj.symbol("x").unwrap().addr;
        assert_eq!(obj.symbolise(base + 4).unwrap().as_str(), "x");
        assert_eq!(obj.symbolise(0xdead_0000), None);
    }

    #[test]
    fn relocations_recorded() {
        let obj = sample();
        assert_eq!(obj.relocs.len(), 2, "adrp + add refer to x");
        assert!(obj
            .relocs
            .iter()
            .all(|r| r.symbol == "x" && r.func == "P0"));
        assert_eq!(obj.relocs[0].index, 0);
        assert_eq!(obj.relocs[1].index, 1);
    }

    #[test]
    fn debug_entries_carry_constness() {
        let obj = sample();
        assert!(obj.debug_of("c").unwrap().readonly);
        assert!(!obj.debug_of("x").unwrap().readonly);
        assert_eq!(obj.debug_of("c").unwrap().c_type, "const atomic_int");
    }

    #[test]
    fn listing_renders() {
        let mut obj = sample();
        obj.link();
        let text = obj.disassemble()[0].to_string();
        assert!(text.contains("<P0>:"));
        assert!(text.contains("ldr w0, [x8]"));
    }

    #[test]
    fn missing_debug_info_reported() {
        let mut obj = ObjectFile::new(Arch::AArch64);
        obj.add_function(
            "P0",
            AsmCode::A64(vec![A64Instr::Adrp {
                dst: "x8".into(),
                sym: SymRef::Addr(0xdead_beef),
            }]),
        );
        obj.link();
        let err = obj.symbolised_functions().unwrap_err();
        assert!(err.to_string().contains("no covering symbol"), "{err}");
    }

    #[test]
    fn got_slot_idempotent_and_holds_address() {
        let mut obj = ObjectFile::new(Arch::AArch64);
        obj.add_got_slot("x");
        obj.add_got_slot("x");
        assert_eq!(obj.symbols.len(), 1);
        assert_eq!(
            obj.data_init["got.x"],
            Val::Addr(Loc::new("x")),
            "the slot holds the address of x"
        );
    }
}
