//! Simulated silicon: a `litmus7`-style hardware test runner.
//!
//! The paper's central observation about hardware-backed testing (§II-A,
//! §IV-A): *"silicon manufacturers may implement restricted variants of an
//! architecture model, [so] hardware executions may omit behaviours
//! allowed by the model"*, and weak outcomes appear only under stress —
//! Windsor et al. missed the Fig. 7 load-buffering outcome on a Raspberry
//! Pi that never exhibits it, while Sarkar et al. observed it on an Apple
//! A9 and an Nvidia Tegra2.
//!
//! A [`Chip`] is an architecture plus an optional *strength profile* (an
//! extra Cat model intersected with the architecture model — behaviours
//! the micro-architecture never produces) and a weak-outcome probability.
//! [`LitmusRunner::run`] samples outcomes the way repeated hardware runs
//! would: strong (SC) outcomes dominate; weak outcomes surface with a
//! probability scaled by the stress parameter.

use std::collections::BTreeMap;
use telechat_cat::{CatModel, ModelIntersection};
use telechat_common::{Arch, Error, Outcome, OutcomeSet, Result, XorShiftRng};
use telechat_exec::{simulate, ConsistencyModel, SeqCstRef, SimConfig};
use telechat_litmus::LitmusTest;

/// A piece of silicon: its architecture, what it actually implements, and
/// how reluctant it is to show weak behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chip {
    /// Marketing name.
    pub name: &'static str,
    /// Architecture the chip implements.
    pub arch: Arch,
    /// Extra bundled model intersected with the architecture model —
    /// behaviours outside it never occur on this chip. `None` = the chip
    /// exhibits the full architectural envelope.
    pub strength_profile: Option<&'static str>,
    /// Base probability weight of each weak outcome at stress 100
    /// (relative to 1.0 for each SC outcome).
    pub weak_bias: f64,
}

/// An in-order-ish Raspberry Pi 4: never exhibits load buffering — the
/// chip on which C4 missed the Fig. 7 behaviour.
pub const RASPBERRY_PI_4: Chip = Chip {
    name: "Raspberry Pi 4",
    arch: Arch::AArch64,
    strength_profile: Some("hw-inorder"),
    weak_bias: 0.05,
};

/// An Apple A9: aggressively out-of-order, exhibits load buffering
/// (Sarkar et al. [70]).
pub const APPLE_A9: Chip = Chip {
    name: "Apple A9",
    arch: Arch::AArch64,
    strength_profile: None,
    weak_bias: 0.2,
};

/// A Cavium ThunderX2 (the paper's 224-core campaign machine).
pub const THUNDER_X2: Chip = Chip {
    name: "Cavium ThunderX2",
    arch: Arch::AArch64,
    strength_profile: None,
    weak_bias: 0.1,
};

/// An Nvidia Tegra2 (Armv7; also exhibits LB per [70]).
pub const TEGRA2: Chip = Chip {
    name: "Nvidia Tegra2",
    arch: Arch::Armv7,
    strength_profile: None,
    weak_bias: 0.15,
};

/// A histogram of observed final states, as `litmus7` prints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram(BTreeMap<Outcome, u64>);

impl Histogram {
    /// Outcomes observed at least once.
    pub fn observed(&self) -> OutcomeSet {
        self.0.keys().cloned().collect()
    }

    /// The count for one outcome.
    pub fn count(&self, o: &Outcome) -> u64 {
        self.0.get(o).copied().unwrap_or(0)
    }

    /// Total runs recorded.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Iterates `(outcome, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Outcome, u64)> {
        self.0.iter().map(|(o, c)| (o, *c))
    }
}

/// Weighted index sampling over `f64` weights (cumulative-sum method),
/// driven by the workspace-shared deterministic [`XorShiftRng`] — the
/// offline stand-in for `rand`'s `WeightedIndex` (no registry crates are
/// available in this build environment).
#[derive(Debug, Clone)]
struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    fn new(weights: &[f64]) -> Result<WeightedIndex> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(Error::Unsupported(
                "sampling weights: empty or invalid".into(),
            ));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for w in weights {
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(Error::Unsupported("sampling weights: all zero".into()));
        }
        Ok(WeightedIndex { cumulative, total })
    }

    fn sample(&self, rng: &mut XorShiftRng) -> usize {
        let x = rng.next_f64() * self.total;
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// Runs litmus tests on a simulated chip.
#[derive(Debug)]
pub struct LitmusRunner {
    chip: Chip,
    rng: XorShiftRng,
    sim: SimConfig,
}

impl LitmusRunner {
    /// A runner with a deterministic seed (experiments are repeatable; the
    /// *hardware* is what's nondeterministic across seeds).
    pub fn new(chip: Chip, seed: u64) -> LitmusRunner {
        LitmusRunner {
            chip,
            rng: XorShiftRng::seed_from_u64(seed),
            sim: SimConfig::default(),
        }
    }

    /// The chip.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Runs `test` `runs` times at the given stress level (0–100; paper:
    /// C4 "stress-tests" hardware to coax out weak outcomes).
    ///
    /// # Errors
    ///
    /// Fails on architecture mismatch or simulation errors.
    pub fn run(&mut self, test: &LitmusTest, runs: u64, stress: u32) -> Result<Histogram> {
        if test.arch != self.chip.arch {
            return Err(Error::Unsupported(format!(
                "{} cannot execute {} code",
                self.chip.name, test.arch
            )));
        }
        // What this silicon can produce: the architecture model,
        // restricted by the chip's strength profile.
        let arch_model = CatModel::for_arch(self.chip.arch)?;
        let chip_model: Box<dyn ConsistencyModel> = match self.chip.strength_profile {
            Some(p) => Box::new(ModelIntersection::new(vec![
                arch_model,
                CatModel::bundled(p)?,
            ])),
            None => Box::new(arch_model),
        };
        let possible = simulate(test, chip_model.as_ref(), &self.sim)?;
        // SC outcomes are the common ones; everything else needs luck.
        let sc = simulate(test, &SeqCstRef, &self.sim)?;

        let outcomes: Vec<Outcome> = possible.outcomes.iter().cloned().collect();
        if outcomes.is_empty() {
            return Ok(Histogram::default());
        }
        let weights: Vec<f64> = outcomes
            .iter()
            .map(|o| {
                if sc.outcomes.contains(o) {
                    1.0
                } else {
                    (self.chip.weak_bias * f64::from(stress) / 100.0).max(1e-9)
                }
            })
            .collect();
        let dist = WeightedIndex::new(&weights)?;
        let mut hist = Histogram::default();
        for _ in 0..runs {
            let idx = dist.sample(&mut self.rng);
            *hist.0.entry(outcomes[idx].clone()).or_insert(0) += 1;
        }
        Ok(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telechat_common::{Reg, StateKey, ThreadId, Val};
    use telechat_isa::aarch64::A64Instr;
    use telechat_isa::{AsmCode, AsmTest};
    use telechat_litmus::{Condition, LocDecl, Prop};

    /// The compiled LB test (registers pre-initialised, plain LDR/STR).
    fn lb_a64() -> LitmusTest {
        let thread = || {
            AsmCode::A64(vec![
                A64Instr::Ldr {
                    dst: "w0".into(),
                    base: "x1".into(),
                },
                A64Instr::MovImm {
                    dst: "w2".into(),
                    imm: 1,
                },
                A64Instr::Str {
                    src: "w2".into(),
                    base: "x3".into(),
                },
            ])
        };
        AsmTest {
            name: "LB-a64".into(),
            locs: vec![LocDecl::atomic("x", 0), LocDecl::atomic("y", 0)],
            reg_init: vec![
                (ThreadId(0), Reg::new("X1"), Val::Addr("x".into())),
                (ThreadId(0), Reg::new("X3"), Val::Addr("y".into())),
                (ThreadId(1), Reg::new("X1"), Val::Addr("y".into())),
                (ThreadId(1), Reg::new("X3"), Val::Addr("x".into())),
            ],
            threads: vec![thread(), thread()],
            condition: Condition::exists(
                Prop::atom(StateKey::reg(ThreadId(0), "X0"), 1i64)
                    .and(Prop::atom(StateKey::reg(ThreadId(1), "X0"), 1i64)),
            ),
            observed: vec![],
        }
        .to_litmus()
        .unwrap()
    }

    fn weak_outcome() -> Outcome {
        let mut o = Outcome::new();
        o.set(StateKey::reg(ThreadId(0), "X0"), Val::Int(1));
        o.set(StateKey::reg(ThreadId(1), "X0"), Val::Int(1));
        o
    }

    #[test]
    fn raspberry_pi_never_shows_load_buffering() {
        let mut runner = LitmusRunner::new(RASPBERRY_PI_4, 42);
        let hist = runner.run(&lb_a64(), 10_000, 100).unwrap();
        assert_eq!(
            hist.count(&weak_outcome()),
            0,
            "the Pi's profile forbids LB (the C4 miss)"
        );
        assert!(hist.total() == 10_000);
    }

    #[test]
    fn apple_a9_shows_load_buffering_under_stress() {
        let mut runner = LitmusRunner::new(APPLE_A9, 42);
        let hist = runner.run(&lb_a64(), 10_000, 100).unwrap();
        assert!(
            hist.count(&weak_outcome()) > 0,
            "A9 exhibits LB (Sarkar et al.): {hist:?}"
        );
    }

    #[test]
    fn no_stress_rarely_shows_weak_outcomes() {
        let mut runner = LitmusRunner::new(APPLE_A9, 42);
        let relaxed = runner.run(&lb_a64(), 1_000, 0).unwrap();
        let stressed = LitmusRunner::new(APPLE_A9, 42)
            .run(&lb_a64(), 1_000, 100)
            .unwrap();
        assert!(
            relaxed.count(&weak_outcome()) <= stressed.count(&weak_outcome()),
            "stress increases weak-outcome frequency"
        );
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut runner = LitmusRunner::new(TEGRA2, 1);
        assert!(matches!(
            runner.run(&lb_a64(), 10, 0),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LitmusRunner::new(APPLE_A9, 7).run(&lb_a64(), 500, 50).unwrap();
        let b = LitmusRunner::new(APPLE_A9, 7).run(&lb_a64(), 500, 50).unwrap();
        assert_eq!(a, b);
    }
}
